//! The controlled experiment of paper §3.4: a 40-server cluster, 108
//! victim workloads, one 4-vCPU adversarial VM per host.
//!
//! Friendly applications are placed by a least-loaded or Quasar scheduler;
//! victims are provisioned for peak demand; the adversary has no prior
//! information. The experiment produces one [`ExperimentRecord`] per victim
//! — everything Table 1 and Figs. 6, 7 and 9 aggregate.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use bolt_recommender::{
    ContentHasher, FitCache, HybridRecommender, RecommenderConfig, TrainingData, TrainingExample,
};
use bolt_sim::vm::VmRole;
use bolt_sim::{ChaosConfig, Cluster, FaultPlan, IsolationConfig, Scheduler, ServerSpec, VmId};
use bolt_workloads::catalog::{cassandra, database, hadoop, memcached, spark, speccpu, webserver};
use bolt_workloads::training::training_set;
use bolt_workloads::{
    AppLabel, DatasetScale, PressureVector, Resource, ResourceCharacteristics, WorkloadProfile,
};

use crate::detector::{DegradedReason, Detector, DetectorConfig, RetryPolicy};
use crate::parallel::{split_seed, sweep, Parallelism};
use crate::telemetry::{Counter, Phase, Telemetry, TelemetryLog};
use crate::BoltError;

/// Controlled-experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Number of servers (paper: 40).
    pub servers: usize,
    /// Number of victim workloads (paper: 108).
    pub victims: usize,
    /// vCPUs of each adversarial VM (paper default: 4; Fig. 10b sweeps).
    pub adversary_vcpus: u32,
    /// RNG seed; fixes the victim draw and every stochastic component.
    pub seed: u64,
    /// Isolation configuration for the whole cluster.
    pub isolation: IsolationConfig,
    /// Detection-engine configuration.
    pub detector: DetectorConfig,
    /// Recommender configuration.
    pub recommender: RecommenderConfig,
    /// Seed of the training set (kept distinct from `seed` so training and
    /// test workloads never share instance jitter).
    pub training_seed: u64,
    /// Thread fan-out for the per-victim detection sweep. Results are
    /// byte-identical for every setting (see [`crate::parallel`]).
    #[serde(default)]
    pub parallelism: Parallelism,
    /// Chaos-engine configuration. [`ChaosConfig::none`] (the default)
    /// keeps every hunt on the legacy fixed-cluster path, byte-identical
    /// to runs predating the chaos engine.
    #[serde(default)]
    pub chaos: ChaosConfig,
    /// Retry/backoff policy for hunts under churn. Ignored when `chaos`
    /// is [`ChaosConfig::none`].
    #[serde(default)]
    pub retry: RetryPolicy,
    /// Enables the miss-rate-curve detection channel on every hunt
    /// (equivalent to setting [`DetectorConfig::mrc_channel`]); off by
    /// default so pre-existing runs stay byte-identical.
    #[serde(default)]
    pub mrc_channel: bool,
    /// Enables the anytime iterative-deepening window on every hunt
    /// (equivalent to setting [`DetectorConfig::anytime`]); off by
    /// default so pre-existing runs stay byte-identical.
    #[serde(default)]
    pub anytime: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            servers: 40,
            victims: 108,
            adversary_vcpus: 4,
            seed: 0xA5FA11,
            isolation: IsolationConfig::cloud_default(),
            detector: DetectorConfig::default(),
            recommender: RecommenderConfig::default(),
            training_seed: 7,
            parallelism: Parallelism::default(),
            chaos: ChaosConfig::none(),
            retry: RetryPolicy::default(),
            mrc_channel: false,
            anytime: false,
        }
    }
}

/// One victim's detection outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Ground-truth label.
    pub truth: AppLabel,
    /// Ground-truth pressure fingerprint.
    pub truth_pressure: PressureVector,
    /// Ground-truth characteristics.
    pub truth_characteristics: ResourceCharacteristics,
    /// The label Bolt settled on, if any.
    pub detected: Option<AppLabel>,
    /// The characteristics Bolt derived.
    pub detected_characteristics: ResourceCharacteristics,
    /// Paper-grade label correctness (family + variant).
    pub label_correct: bool,
    /// Characteristics correctness (dominant + critical overlap).
    pub characteristics_correct: bool,
    /// Detection iterations consumed (1..=max).
    pub iterations: usize,
    /// Victim VMs on this victim's host, **including the victim itself**
    /// ("VMs on server"): a victim alone with the adversary reports 1.
    /// This is the convention of Fig. 6a's x-axis and of
    /// [`ExperimentResults::accuracy_by_co_residents`]; it is deliberately
    /// *not* "other victims besides this one".
    pub co_residents: usize,
    /// The victim's dominant resource.
    pub dominant: Resource,
    /// Confidence of the final detection (correlation of the best match,
    /// scaled down when the window was contaminated or budget ran out).
    pub confidence: f64,
    /// Why the final detection was degraded, if it was.
    pub degraded: Option<DegradedReason>,
}

/// Aggregate results of one controlled-experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResults {
    /// Per-victim records.
    pub records: Vec<ExperimentRecord>,
    /// Name of the scheduler used.
    pub scheduler: String,
}

impl ExperimentResults {
    /// Fraction of victims whose *label* was detected correctly.
    pub fn label_accuracy(&self) -> f64 {
        fraction(&self.records, |r| r.label_correct)
    }

    /// Fraction of victims whose *characteristics* were detected correctly.
    pub fn characteristics_accuracy(&self) -> f64 {
        fraction(&self.records, |r| r.characteristics_correct)
    }

    /// Fraction of victims whose final detection was flagged as degraded
    /// (churn mid-window, insufficient samples, or retry-budget
    /// exhaustion). Zero for chaos-off runs.
    pub fn degraded_rate(&self) -> f64 {
        fraction(&self.records, |r| r.degraded.is_some())
    }

    /// Fraction of victims that were *silently* mislabeled: a wrong label
    /// reported with no degradation flag. This is the failure mode
    /// graceful degradation exists to prevent — under churn it should stay
    /// below [`ExperimentResults::degraded_rate`].
    pub fn silent_mislabel_rate(&self) -> f64 {
        fraction(&self.records, |r| {
            !r.label_correct && r.detected.is_some() && r.degraded.is_none()
        })
    }

    /// Mean confidence of the final detections.
    pub fn mean_confidence(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.confidence).sum::<f64>() / self.records.len() as f64
    }

    /// Label accuracy restricted to one application family (Table 1 rows).
    pub fn family_accuracy(&self, family: &str) -> Option<f64> {
        let subset: Vec<&ExperimentRecord> = self
            .records
            .iter()
            .filter(|r| r.truth.family() == family)
            .collect();
        if subset.is_empty() {
            return None;
        }
        Some(subset.iter().filter(|r| r.label_correct).count() as f64 / subset.len() as f64)
    }

    /// Label accuracy as a function of co-resident count (Fig. 6a):
    /// `(co_residents, accuracy, sample_count)` rows. `co_residents`
    /// counts victim VMs on the server *including the hunted victim* (see
    /// [`ExperimentRecord::co_residents`]), so rows start at 1.
    pub fn accuracy_by_co_residents(&self) -> Vec<(usize, f64, usize)> {
        let max = self
            .records
            .iter()
            .map(|r| r.co_residents)
            .max()
            .unwrap_or(0);
        (1..=max)
            .filter_map(|n| {
                let subset: Vec<&ExperimentRecord> = self
                    .records
                    .iter()
                    .filter(|r| r.co_residents == n)
                    .collect();
                if subset.is_empty() {
                    None
                } else {
                    let acc = subset.iter().filter(|r| r.label_correct).count() as f64
                        / subset.len() as f64;
                    Some((n, acc, subset.len()))
                }
            })
            .collect()
    }

    /// Label accuracy restricted to multi-tenant placements (two or more
    /// victim VMs sharing the hunted server) — the regime where mixture
    /// decomposition, and thus the miss-rate-curve tie-break, can make a
    /// difference. `None` when no victim shares its server.
    pub fn multi_tenant_label_accuracy(&self) -> Option<f64> {
        let subset: Vec<&ExperimentRecord> = self
            .records
            .iter()
            .filter(|r| r.co_residents >= 2)
            .collect();
        if subset.is_empty() {
            return None;
        }
        Some(subset.iter().filter(|r| r.label_correct).count() as f64 / subset.len() as f64)
    }

    /// Label accuracy by the victim's dominant resource (Fig. 6b):
    /// `(resource, accuracy, sample_count)` rows in canonical order.
    pub fn accuracy_by_dominant(&self) -> Vec<(Resource, f64, usize)> {
        Resource::ALL
            .iter()
            .filter_map(|&res| {
                let subset: Vec<&ExperimentRecord> =
                    self.records.iter().filter(|r| r.dominant == res).collect();
                if subset.is_empty() {
                    None
                } else {
                    let acc = subset.iter().filter(|r| r.label_correct).count() as f64
                        / subset.len() as f64;
                    Some((res, acc, subset.len()))
                }
            })
            .collect()
    }

    /// The PDF of iterations-until-detection over correctly-labeled victims
    /// (Fig. 7a): index 0 is one iteration.
    pub fn iterations_pdf(&self, max_iterations: usize) -> Vec<f64> {
        let correct: Vec<&ExperimentRecord> =
            self.records.iter().filter(|r| r.label_correct).collect();
        let mut pdf = vec![0.0; max_iterations];
        if correct.is_empty() {
            return pdf;
        }
        for r in &correct {
            let idx = (r.iterations - 1).min(max_iterations - 1);
            pdf[idx] += 1.0;
        }
        for v in &mut pdf {
            *v /= correct.len() as f64;
        }
        pdf
    }

    /// The PDF of iterations-until-detection restricted to victims with a
    /// given co-resident count (Fig. 7b). Returns `None` when no correct
    /// detection exists for that count.
    pub fn iterations_pdf_for_co_residents(
        &self,
        co_residents: usize,
        max_iterations: usize,
    ) -> Option<Vec<f64>> {
        let subset: Vec<&ExperimentRecord> = self
            .records
            .iter()
            .filter(|r| r.label_correct && r.co_residents == co_residents)
            .collect();
        if subset.is_empty() {
            return None;
        }
        let mut pdf = vec![0.0; max_iterations];
        for r in &subset {
            let idx = (r.iterations - 1).min(max_iterations - 1);
            pdf[idx] += 1.0;
        }
        for v in &mut pdf {
            *v /= subset.len() as f64;
        }
        Some(pdf)
    }

    /// Label accuracy bucketed by the victim's true pressure on `resource`
    /// (Fig. 9): `(bucket_center, accuracy, sample_count)` over buckets of
    /// `width` percent.
    pub fn accuracy_by_pressure(&self, resource: Resource, width: f64) -> Vec<(f64, f64, usize)> {
        assert!(width > 0.0, "bucket width must be positive");
        let buckets = (100.0 / width).ceil() as usize;
        let mut out = Vec::new();
        for b in 0..buckets {
            let lo = b as f64 * width;
            let hi = lo + width;
            let subset: Vec<&ExperimentRecord> = self
                .records
                .iter()
                .filter(|r| {
                    let p = r.truth_pressure[resource];
                    p >= lo && (p < hi || (b == buckets - 1 && p <= hi))
                })
                .collect();
            if !subset.is_empty() {
                let acc =
                    subset.iter().filter(|r| r.label_correct).count() as f64 / subset.len() as f64;
                out.push((lo + width / 2.0, acc, subset.len()));
            }
        }
        out
    }
}

fn fraction(records: &[ExperimentRecord], pred: impl Fn(&ExperimentRecord) -> bool) -> f64 {
    if records.is_empty() {
        return 0.0;
    }
    records.iter().filter(|r| pred(r)).count() as f64 / records.len() as f64
}

/// Draws the victim test set: the same families as the training set, but
/// fresh instances (disjoint jitter, different load phases) plus scales and
/// variants cycled differently — the paper's "no overlap between training
/// and testing sets in terms of algorithms, datasets, and input loads".
pub fn victim_set(count: usize, rng: &mut StdRng) -> Vec<WorkloadProfile> {
    let mut out = Vec::with_capacity(count);
    let scales = DatasetScale::ALL;
    // Victim sizes mirror the paper's setting: jobs take "one or more
    // vCPUs" with up to 5 VMs per host; the mix keeps 40 servers around
    // three-quarters committed so core sharing with the 4-vCPU adversary
    // arises naturally without overflowing the bin packing.
    const VCPUS: [u32; 6] = [4, 2, 4, 6, 1, 2];
    let mut i = 0;
    while out.len() < count {
        let scale = scales[i % 3];
        let p = match i % 9 {
            0 => memcached::profile(&memcached::Variant::ALL[i % 4], rng),
            1 => hadoop::profile(&hadoop::Algorithm::ALL[i % 5], scale, rng),
            2 => spark::profile(&spark::Algorithm::ALL[i % 4], scale, rng),
            3 => cassandra::profile(&cassandra::Variant::ALL[i % 3], rng),
            4 => speccpu::profile(&speccpu::Benchmark::ALL[i % 7], rng),
            5 => webserver::profile(&webserver::Variant::ALL[i % 3], rng),
            6 => database::profile(&database::Variant::ALL[i % 3], rng),
            7 => hadoop::profile(&hadoop::Algorithm::ALL[(i + 2) % 5], scale, rng),
            _ => spark::profile(&spark::Algorithm::ALL[(i + 1) % 4], scale, rng),
        };
        // SPEC stays single-threaded; everything else takes its drawn size.
        let vcpus = if p.label().family() == "speccpu2006" {
            1
        } else {
            VCPUS[i % VCPUS.len()]
        };
        out.push(p.with_vcpus(vcpus));
        i += 1;
    }
    out
}

/// Passes a pressure fingerprint through the observation channel of an
/// isolation configuration: each resource's pressure is scaled by the
/// cross-tenant visibility the mechanisms leave behind.
///
/// Fitting the recommender on channel-matched training data mirrors
/// reality — Bolt's training profiles were collected by probing known
/// applications in the *same* cloud setting, so training and test signals
/// pass through the same attenuation.
pub fn observe_through(pressure: &PressureVector, isolation: &IsolationConfig) -> PressureVector {
    let mut out = PressureVector::zero();
    for r in Resource::ALL {
        out[r] = pressure[r] * isolation.attenuation(r);
    }
    out
}

/// Builds channel-matched training examples for a given isolation config.
pub fn observed_training(
    profiles: &[WorkloadProfile],
    isolation: &IsolationConfig,
) -> Vec<TrainingExample> {
    profiles
        .iter()
        .map(|p| TrainingExample {
            label: p.label().clone(),
            kind: p.kind(),
            pressure: observe_through(p.base_pressure(), isolation),
            reference: observe_through(p.reference_pressure(), isolation),
        })
        .collect()
}

/// Content key for the observed training set: the catalog draw is fixed
/// by `training_seed`, and [`observe_through`] folds in nothing but the
/// per-resource isolation attenuations — so two configs sharing those
/// bits share the training set, however much the rest differs.
pub(crate) fn training_data_key(training_seed: u64, isolation: &IsolationConfig) -> u64 {
    let mut h = ContentHasher::new();
    h.write_u64(training_seed);
    for r in Resource::ALL {
        h.write_f64(isolation.attenuation(r));
    }
    h.finish().as_u128() as u64
}

/// The one fit path of the driver stack: builds (or recalls) the observed
/// training set for `(training_seed, isolation)` and fits (or recalls)
/// the recommender for it under `recommender` through `cache`.
///
/// Telemetry contract: a cache miss records a [`Phase::RecommenderFit`]
/// span plus a [`Counter::FitCacheMiss`]; a hit records a
/// [`Counter::FitCacheHit`] and **no** fit span (no training ran).
///
/// # Errors
///
/// Propagates numerical errors from training-set construction or the fit.
pub fn shared_recommender(
    training_seed: u64,
    isolation: &IsolationConfig,
    recommender: RecommenderConfig,
    cache: &FitCache,
    telemetry: &mut Telemetry,
) -> Result<Arc<HybridRecommender>, BoltError> {
    let data = cache.training_data(training_data_key(training_seed, isolation), || {
        TrainingData::from_examples(observed_training(&training_set(training_seed), isolation))
    })?;
    let clock = telemetry.begin();
    let (model, hit) = cache.fit(&data, recommender)?;
    if hit {
        telemetry.count(Counter::FitCacheHit, 1);
    } else {
        telemetry.count(Counter::FitCacheMiss, 1);
        telemetry.span(Phase::RecommenderFit, 0.0, 0.0, clock);
    }
    Ok(model)
}

/// A built controlled-experiment testbed, ready for detection or attacks.
pub struct Testbed {
    /// The populated cluster.
    pub cluster: Cluster,
    /// One adversarial VM id per server (index-aligned with servers).
    pub adversaries: Vec<VmId>,
    /// The victim VM ids in launch order.
    pub victims: Vec<VmId>,
    /// The fitted detector.
    pub detector: Detector,
}

/// Builds the §3.4 testbed: `servers` hosts, one quiet adversarial VM
/// each, `victims` workloads placed by `scheduler`.
///
/// # Errors
///
/// Returns [`BoltError::InvalidExperiment`] if the victims cannot all be
/// placed, and propagates simulator/numerical errors.
pub fn build_testbed<S: Scheduler>(
    config: &ExperimentConfig,
    scheduler: &S,
) -> Result<Testbed, BoltError> {
    build_testbed_cache(config, scheduler, &FitCache::new())
}

/// [`build_testbed`] fitting the recommender through a shared
/// [`FitCache`]: sweeps that build many testbeds over the same
/// `(training_seed, isolation, recommender)` train exactly once. Cache
/// hits are byte-identical to refits ([`HybridRecommender::fit`] is
/// pure), so results never depend on the cache;
/// [`FitCache::disabled`] restores the train-every-time path exactly.
///
/// # Errors
///
/// Same conditions as [`build_testbed`].
pub fn build_testbed_cache<S: Scheduler>(
    config: &ExperimentConfig,
    scheduler: &S,
    cache: &FitCache,
) -> Result<Testbed, BoltError> {
    build_testbed_inner(config, scheduler, cache, &mut Telemetry::disabled())
}

fn build_testbed_inner<S: Scheduler>(
    config: &ExperimentConfig,
    scheduler: &S,
    cache: &FitCache,
    telemetry: &mut Telemetry,
) -> Result<Testbed, BoltError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut cluster = Cluster::new(config.servers, ServerSpec::xeon(), config.isolation)?;

    // One adversarial VM per server, quiet until it probes.
    let mut adversaries = Vec::with_capacity(config.servers);
    for s in 0..config.servers {
        let profile = memcached::profile(&memcached::Variant::Mixed, &mut rng)
            .with_vcpus(config.adversary_vcpus);
        let id = cluster.launch_on(s, profile, VmRole::Adversarial, 0.0)?;
        cluster.set_pressure_override(id, Some(PressureVector::zero()))?;
        adversaries.push(id);
    }

    // Victims, placed by the scheduler.
    let profiles = victim_set(config.victims, &mut rng);
    let mut victims = Vec::with_capacity(profiles.len());
    for p in profiles {
        let server =
            scheduler
                .select_server(&cluster, &p)
                .ok_or_else(|| BoltError::InvalidExperiment {
                    reason: format!(
                        "cluster too small: {} victims do not fit on {} servers",
                        config.victims, config.servers
                    ),
                })?;
        victims.push(cluster.launch_on(server, p, VmRole::Friendly, 0.0)?);
    }

    let recommender = shared_recommender(
        config.training_seed,
        &config.isolation,
        config.recommender,
        cache,
        telemetry,
    )?;
    let detector = Detector::new(
        recommender,
        DetectorConfig {
            mrc_channel: config.detector.mrc_channel || config.mrc_channel,
            anytime: config.detector.anytime || config.anytime,
            ..config.detector
        },
    );

    Ok(Testbed {
        cluster,
        adversaries,
        victims,
        detector,
    })
}

/// Runs the full controlled experiment: every victim is hunted by the
/// adversary on its host until correctly labeled or the iteration budget
/// runs out.
///
/// Matching a detection to a *specific* victim on a multi-tenant host uses
/// the paper's acceptance criterion transplanted to simulation: the
/// detection is correct for victim `v` when the detected label matches
/// `v`'s (primary or shutter-secondary verdict).
///
/// Victims are independent: each hunt runs against the same read-only
/// cluster with its own RNG derived from `config.seed` and the victim
/// index ([`split_seed`]), and the hunts fan out over
/// `config.parallelism` worker threads. Results are byte-identical for
/// every thread count, including [`Parallelism::Serial`].
///
/// # Errors
///
/// Propagates [`BoltError`] from testbed construction or detection.
pub fn run_experiment<S: Scheduler>(
    config: &ExperimentConfig,
    scheduler: &S,
) -> Result<ExperimentResults, BoltError> {
    run_experiment_cache(config, scheduler, &FitCache::new())
}

/// [`run_experiment`] fitting through a shared [`FitCache`] — the entry
/// point sweeps use so every point past the first reuses the trained
/// recommender. Output is byte-identical to the uncached path.
///
/// # Errors
///
/// Same conditions as [`run_experiment`].
pub fn run_experiment_cache<S: Scheduler>(
    config: &ExperimentConfig,
    scheduler: &S,
    cache: &FitCache,
) -> Result<ExperimentResults, BoltError> {
    run_experiment_inner(config, scheduler, cache, false).map(|(results, _)| results)
}

/// [`run_experiment`] with telemetry: returns the merged event stream of
/// the run alongside the results. The testbed construction's cluster
/// events record as unit 0; victim `i`'s hunt records as unit `i + 1`.
/// Unit buffers merge in unit order, so the stream is identical for every
/// [`Parallelism`] setting (wall-clock span durations aside — see
/// [`TelemetryLog::normalized`]).
///
/// # Errors
///
/// Same conditions as [`run_experiment`].
pub fn run_experiment_telemetry<S: Scheduler>(
    config: &ExperimentConfig,
    scheduler: &S,
) -> Result<(ExperimentResults, TelemetryLog), BoltError> {
    run_experiment_inner(config, scheduler, &FitCache::new(), true)
}

/// [`run_experiment_telemetry`] fitting through a shared [`FitCache`].
/// Unit 0 additionally carries the fit-cache events: a
/// [`Phase::RecommenderFit`] span + [`Counter::FitCacheMiss`] when the
/// recommender trained, a [`Counter::FitCacheHit`] when it was recalled.
///
/// # Errors
///
/// Same conditions as [`run_experiment`].
pub fn run_experiment_cache_telemetry<S: Scheduler>(
    config: &ExperimentConfig,
    scheduler: &S,
    cache: &FitCache,
) -> Result<(ExperimentResults, TelemetryLog), BoltError> {
    run_experiment_inner(config, scheduler, cache, true)
}

fn run_experiment_inner<S: Scheduler>(
    config: &ExperimentConfig,
    scheduler: &S,
    cache: &FitCache,
    telemetry_enabled: bool,
) -> Result<(ExperimentResults, TelemetryLog), BoltError> {
    let unit = |u: usize| {
        if telemetry_enabled {
            Telemetry::for_unit(u)
        } else {
            Telemetry::disabled()
        }
    };
    // Unit 0 carries the shared setup: the recommender fit (or cache
    // recall) and every launch the testbed performed.
    let mut unit0 = unit(0);
    let mut testbed = build_testbed_inner(config, scheduler, cache, &mut unit0)?;
    if unit0.is_enabled() {
        unit0.cluster_events(testbed.cluster.take_events());
    }
    let Testbed {
        cluster,
        adversaries,
        victims,
        detector,
    } = testbed;

    // Victim VMs per server, precomputed once. `co_residents` follows the
    // "victim VMs on the host" convention: the hunted victim counts itself,
    // so a lone victim reports 1 (Fig. 6a's x-axis starts at 1).
    let mut victims_per_server = vec![0usize; config.servers];
    for &v in &victims {
        victims_per_server[cluster.vm(v)?.server] += 1;
    }

    let outcomes = sweep(&victims, config.parallelism, |idx, &victim_id| {
        let mut telemetry = unit(idx + 1);
        let record = hunt_victim(
            config,
            &cluster,
            &detector,
            &adversaries,
            &victims_per_server,
            idx,
            victim_id,
            &mut telemetry,
        );
        record.map(|r| (r, telemetry.into_events()))
    });

    let mut log = TelemetryLog::new();
    log.merge(unit0);
    let mut records = Vec::with_capacity(victims.len());
    for outcome in outcomes {
        let (record, events) = outcome?;
        records.push(record);
        log.extend(events);
    }

    Ok((
        ExperimentResults {
            records,
            scheduler: scheduler.name().to_string(),
        },
        log,
    ))
}

/// Hunts one victim with an RNG stream derived from the victim index —
/// the per-item body of [`run_experiment`]'s sweep.
#[allow(clippy::too_many_arguments)]
fn hunt_victim(
    config: &ExperimentConfig,
    cluster: &Cluster,
    detector: &Detector,
    adversaries: &[VmId],
    victims_per_server: &[usize],
    idx: usize,
    victim_id: VmId,
    telemetry: &mut Telemetry,
) -> Result<ExperimentRecord, BoltError> {
    let mut rng = StdRng::seed_from_u64(split_seed(config.seed ^ 0x5EED, idx as u64));

    let state = cluster.vm(victim_id)?;
    let truth = state.profile.label().clone();
    let truth_pressure = *state.profile.base_pressure();
    // Characteristics live in observed space: what the channel hides
    // (e.g. partitioned memory capacity) is not a detectable — or
    // attackable — characteristic in this environment.
    let truth_characteristics = ResourceCharacteristics::from_pressure(&observe_through(
        &truth_pressure,
        &config.isolation,
    ));
    let server = state.server;
    let co_residents = victims_per_server[server];
    let adversary = adversaries[server];

    // Stagger each victim's hunt so load-pattern phases decorrelate.
    let start_t = rng.gen::<f64>() * 200.0;
    let (detection, iterations) = if config.chaos.is_none() {
        detector.detect_until_telemetry(
            cluster,
            adversary,
            start_t,
            |d| d.matches_label(&truth),
            &mut rng,
            telemetry,
        )?
    } else {
        // Each hunt churns its own private copy of the cluster so victims
        // stay independent (and the sweep stays thread-count invariant);
        // the fault plan is a pure function of (config, seed, victim index).
        let mut live = cluster.snapshot();
        let horizon_s = config.detector.max_iterations.max(1) as f64
            * (config.detector.interval_s + 120.0)
            + 600.0;
        let mut plan = FaultPlan::compile(
            &config.chaos,
            config.seed ^ 0xC4A0,
            idx as u64,
            start_t,
            horizon_s,
        );
        plan.protect(&[adversary, victim_id]);
        detector.detect_until_churn_telemetry(
            &mut live,
            &mut plan,
            &config.retry,
            adversary,
            start_t,
            |d| d.matches_label(&truth),
            &mut rng,
            telemetry,
        )?
    };

    let detected = detection.label().cloned();
    let label_correct = detection.matches_label(&truth);
    let detected_characteristics = detection
        .characteristics()
        .cloned()
        .unwrap_or_else(|| ResourceCharacteristics::from_pressure(&PressureVector::zero()));
    let characteristics_correct = detection.matches_characteristics(&truth_characteristics);

    Ok(ExperimentRecord {
        truth,
        truth_pressure,
        truth_characteristics,
        detected,
        label_correct,
        characteristics_correct,
        detected_characteristics,
        iterations,
        co_residents,
        dominant: truth_pressure.dominant(),
        confidence: detection.confidence,
        degraded: detection.degraded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_sim::LeastLoaded;

    fn small_config() -> ExperimentConfig {
        ExperimentConfig {
            servers: 8,
            victims: 16,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn victim_set_draws_requested_count_and_diversity() {
        let mut rng = StdRng::seed_from_u64(3);
        let set = victim_set(30, &mut rng);
        assert_eq!(set.len(), 30);
        let families: std::collections::HashSet<String> =
            set.iter().map(|p| p.label().family().to_string()).collect();
        assert!(
            families.len() >= 5,
            "want diverse families, got {families:?}"
        );
    }

    #[test]
    fn testbed_places_one_adversary_per_server() {
        let config = small_config();
        let testbed = build_testbed(&config, &LeastLoaded).unwrap();
        assert_eq!(testbed.adversaries.len(), 8);
        assert_eq!(testbed.victims.len(), 16);
        for (s, &adv) in testbed.adversaries.iter().enumerate() {
            assert_eq!(testbed.cluster.vm(adv).unwrap().server, s);
        }
    }

    #[test]
    fn overfull_experiment_rejected() {
        let config = ExperimentConfig {
            servers: 1,
            victims: 50,
            ..ExperimentConfig::default()
        };
        assert!(matches!(
            build_testbed(&config, &LeastLoaded),
            Err(BoltError::InvalidExperiment { .. })
        ));
    }

    #[test]
    fn small_experiment_reaches_reasonable_accuracy() {
        let results = run_experiment(&small_config(), &LeastLoaded).unwrap();
        assert_eq!(results.records.len(), 16);
        let acc = results.label_accuracy();
        assert!(
            acc >= 0.5,
            "label accuracy {acc} suspiciously low for a lightly-loaded cluster"
        );
        let chars = results.characteristics_accuracy();
        assert!(
            chars >= acc,
            "characteristics accuracy {chars} < label accuracy {acc}"
        );
    }

    #[test]
    fn aggregations_are_consistent() {
        let results = run_experiment(&small_config(), &LeastLoaded).unwrap();
        // accuracy_by_co_residents sample counts sum to the record count.
        let total: usize = results
            .accuracy_by_co_residents()
            .iter()
            .map(|&(_, _, n)| n)
            .sum();
        assert_eq!(total, results.records.len());
        // iterations PDF sums to ~1 over correct detections (if any).
        let pdf = results.iterations_pdf(6);
        let s: f64 = pdf.iter().sum();
        if results.records.iter().any(|r| r.label_correct) {
            assert!((s - 1.0).abs() < 1e-9);
        }
        // dominant-resource counts also sum to the record count.
        let total_dom: usize = results
            .accuracy_by_dominant()
            .iter()
            .map(|&(_, _, n)| n)
            .sum();
        assert_eq!(total_dom, results.records.len());
    }

    #[test]
    fn telemetry_stream_is_thread_count_invariant() {
        let serial = ExperimentConfig {
            parallelism: Parallelism::Serial,
            ..small_config()
        };
        let threaded = ExperimentConfig {
            parallelism: Parallelism::Threads(3),
            ..small_config()
        };
        let (r1, log1) = run_experiment_telemetry(&serial, &LeastLoaded).unwrap();
        let (r2, log2) = run_experiment_telemetry(&threaded, &LeastLoaded).unwrap();
        assert_eq!(r1, r2);
        assert!(!log1.is_empty());
        // The event sequence is identical at any thread count once the
        // (necessarily nondeterministic) wall-clock durations are zeroed.
        assert_eq!(log1.normalized(), log2.normalized());
        assert_eq!(log1.normalized().to_jsonl(), log2.normalized().to_jsonl());
        // The JSONL encoding round-trips to the same event sequence.
        let back = TelemetryLog::from_jsonl(&log1.to_jsonl()).unwrap();
        assert_eq!(back, log1);
        // A telemetry-off run computes the same results.
        let plain = run_experiment(&serial, &LeastLoaded).unwrap();
        assert_eq!(plain, r1);
    }

    #[test]
    fn cached_fit_emits_hit_counter_and_no_fit_span() {
        // The telemetry contract: a miss pays for training and records a
        // RecommenderFit span; a hit records the FitCacheHit counter and
        // nothing else — claiming a fit span for work that never ran would
        // corrupt the phase profile.
        let config = small_config();
        let cache = FitCache::new();
        let fit_events = |log: &crate::telemetry::TelemetryLog| {
            let mut spans = 0u64;
            let mut hits = 0u64;
            let mut misses = 0u64;
            for event in log.events() {
                match *event {
                    crate::telemetry::TelemetryEvent::Span {
                        phase: Phase::RecommenderFit,
                        ..
                    } => spans += 1,
                    crate::telemetry::TelemetryEvent::Count { counter, delta, .. } => match counter
                    {
                        Counter::FitCacheHit => hits += delta,
                        Counter::FitCacheMiss => misses += delta,
                        _ => {}
                    },
                    _ => {}
                }
            }
            (spans, hits, misses)
        };
        let (_, cold) = run_experiment_cache_telemetry(&config, &LeastLoaded, &cache).unwrap();
        assert_eq!(fit_events(&cold), (1, 0, 1), "cold run: one trained fit");
        let (_, warm) = run_experiment_cache_telemetry(&config, &LeastLoaded, &cache).unwrap();
        assert_eq!(
            fit_events(&warm),
            (0, 1, 0),
            "warm run: a hit counter and no fit span"
        );
        // A disabled cache always trains, and says so.
        let (_, honest) =
            run_experiment_cache_telemetry(&config, &LeastLoaded, &FitCache::disabled()).unwrap();
        assert_eq!(fit_events(&honest), (1, 0, 1));
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn pressure_buckets_cover_all_records() {
        let results = run_experiment(&small_config(), &LeastLoaded).unwrap();
        let rows = results.accuracy_by_pressure(Resource::Cpu, 20.0);
        let total: usize = rows.iter().map(|&(_, _, n)| n).sum();
        assert_eq!(total, results.records.len());
    }
}
