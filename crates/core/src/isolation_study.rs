//! The isolation study of paper §6 (Fig. 14): how far existing isolation
//! mechanisms go toward defeating interference-based detection.
//!
//! For each OS-level setting (baremetal, containers, VMs) the study stacks
//! mechanisms cumulatively — thread pinning, network bandwidth
//! partitioning, memory bandwidth isolation, cache partitioning, core
//! isolation — re-running the controlled detection experiment each time.
//! The paper's findings this reproduction preserves:
//!
//! * accuracy decreases monotonically as mechanisms stack;
//! * baremetal leaks the most, VMs the least, at every stack depth;
//! * even the full non-core-isolation stack leaves ~50% accuracy;
//! * core isolation collapses accuracy (to ~14% for containers/VMs) but
//!   costs 34% performance or 45% utilization;
//! * the residual accuracy under core isolation is disk-heavy workloads —
//!   no mechanism isolates disk.

use serde::{Deserialize, Serialize};

use bolt_recommender::FitCache;
use bolt_sim::{IsolationConfig, LeastLoaded, Mechanisms, OsSetting};

use crate::experiment::{
    run_experiment_cache, run_experiment_cache_telemetry, shared_recommender, ExperimentConfig,
};
use crate::parallel::{sweep, Parallelism};
use crate::telemetry::{Counter, Phase, Telemetry, TelemetryLog};
use crate::BoltError;

/// One cell of the Fig. 14 matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IsolationCell {
    /// The OS-level setting.
    pub setting: OsSetting,
    /// Name of the topmost mechanism in the cumulative stack.
    pub stack: String,
    /// Label-detection accuracy under this configuration.
    pub accuracy: f64,
    /// The blanket performance penalty of this configuration.
    pub performance_penalty: f64,
    /// The utilization loss of this configuration.
    pub utilization_penalty: f64,
}

/// Full results of the isolation study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IsolationStudy {
    /// All setting × stack cells, settings outermost, stacks in cumulative
    /// order.
    pub cells: Vec<IsolationCell>,
    /// Accuracy with core isolation *alone* (no other mechanisms), per
    /// setting — the paper notes this still allows 46%.
    pub core_isolation_only: Vec<(OsSetting, f64)>,
}

impl IsolationStudy {
    /// The accuracy for one setting and cumulative stack index (0 = no
    /// mechanisms ... 5 = +core isolation).
    pub fn accuracy(&self, setting: OsSetting, stack_index: usize) -> Option<f64> {
        self.cells
            .iter()
            .filter(|c| c.setting == setting)
            .nth(stack_index)
            .map(|c| c.accuracy)
    }
}

/// Runs the full Fig. 14 sweep. `base` controls the experiment scale; its
/// `isolation` field is overridden per cell.
///
/// The 21 cells (18 cumulative stacks + 3 core-isolation-only) are
/// independent full experiments, so they fan out over `base.parallelism`
/// as whole cells; each inner experiment then runs its victims serially
/// rather than nesting thread pools. Every cell derives its randomness
/// from the configuration alone, so results match a serial run exactly.
///
/// # Errors
///
/// Propagates [`BoltError`] from the underlying experiments.
pub fn run_isolation_study(base: &ExperimentConfig) -> Result<IsolationStudy, BoltError> {
    run_isolation_study_cache(base, &FitCache::new())
}

/// [`run_isolation_study`] fitting through a shared [`FitCache`]. Cells
/// whose isolation stacks leave the same observation channel (e.g. "+
/// thread pinning" only changes measurement noise, not attenuation)
/// share one trained recommender; the distinct channels are pre-warmed
/// on the calling thread so parallel cells hit deterministically.
///
/// # Errors
///
/// Same conditions as [`run_isolation_study`].
pub fn run_isolation_study_cache(
    base: &ExperimentConfig,
    cache: &FitCache,
) -> Result<IsolationStudy, BoltError> {
    run_isolation_study_inner(base, cache, false).map(|(study, _)| study)
}

/// Runs the Fig. 14 sweep with telemetry enabled.
///
/// Each cell records into its own unit (cells in sweep order: 18
/// cumulative stacks, then the 3 core-isolation-only runs): one
/// [`Phase::DetectionIteration`] span timing the whole cell plus a rollup
/// of the inner experiment's counter totals. The inner experiments run
/// serially, so the merged stream is identical for every
/// [`Parallelism`] setting of `base`.
///
/// # Errors
///
/// Propagates [`BoltError`] from the underlying experiments.
pub fn run_isolation_study_telemetry(
    base: &ExperimentConfig,
) -> Result<(IsolationStudy, TelemetryLog), BoltError> {
    run_isolation_study_inner(base, &FitCache::new(), true)
}

/// [`run_isolation_study_telemetry`] fitting through a shared
/// [`FitCache`]; the pre-warm fits record ahead of the per-cell streams
/// as unit 0.
///
/// # Errors
///
/// Same conditions as [`run_isolation_study`].
pub fn run_isolation_study_cache_telemetry(
    base: &ExperimentConfig,
    cache: &FitCache,
) -> Result<(IsolationStudy, TelemetryLog), BoltError> {
    run_isolation_study_inner(base, cache, true)
}

fn run_isolation_study_inner(
    base: &ExperimentConfig,
    cache: &FitCache,
    telemetry_enabled: bool,
) -> Result<(IsolationStudy, TelemetryLog), BoltError> {
    let mut stack_cells: Vec<IsolationConfig> = Vec::new();
    for setting in OsSetting::ALL {
        for mechanisms in Mechanisms::cumulative_stacks() {
            stack_cells.push(IsolationConfig {
                setting,
                mechanisms,
            });
        }
    }
    let core_cells: Vec<IsolationConfig> = OsSetting::ALL
        .into_iter()
        .map(|setting| IsolationConfig {
            setting,
            mechanisms: Mechanisms::core_isolation_only(),
        })
        .collect();

    let tasks: Vec<IsolationConfig> = stack_cells
        .iter()
        .chain(core_cells.iter())
        .copied()
        .collect();

    // Pre-warm the distinct observation channels on this thread: cells
    // then hit the cache deterministically however they are scheduled
    // (racing two parallel cells on a cold shared fingerprint would make
    // the per-cell hit/miss telemetry thread-count dependent).
    let mut prelude = if telemetry_enabled {
        Telemetry::for_unit(0)
    } else {
        Telemetry::disabled()
    };
    if cache.is_enabled() {
        for isolation in &tasks {
            shared_recommender(
                base.training_seed,
                isolation,
                base.recommender,
                cache,
                &mut prelude,
            )?;
        }
    }

    let outcomes = sweep(&tasks, base.parallelism, |idx, isolation| {
        let config = ExperimentConfig {
            isolation: *isolation,
            parallelism: Parallelism::Serial,
            ..*base
        };
        if telemetry_enabled {
            // One unit per cell: a span timing the whole cell plus the
            // inner experiment's counter totals rolled up into it.
            let mut telemetry = Telemetry::for_unit(idx);
            let cell_clock = telemetry.begin();
            let (results, inner) = run_experiment_cache_telemetry(&config, &LeastLoaded, cache)?;
            telemetry.span(Phase::DetectionIteration, 0.0, 0.0, cell_clock);
            for counter in Counter::ALL {
                telemetry.count(counter, inner.counter_total(counter));
            }
            Ok((results.label_accuracy(), telemetry.into_events()))
        } else {
            run_experiment_cache(&config, &LeastLoaded, cache)
                .map(|r| (r.label_accuracy(), Vec::new()))
        }
    });
    let mut accuracies = Vec::with_capacity(tasks.len());
    let mut log = TelemetryLog::new();
    log.merge(prelude);
    for outcome in outcomes {
        let (accuracy, events) = outcome?;
        accuracies.push(accuracy);
        log.extend(events);
    }

    let cells = stack_cells
        .iter()
        .zip(&accuracies)
        .map(|(isolation, &accuracy)| IsolationCell {
            setting: isolation.setting,
            stack: isolation.mechanisms.stack_name().to_string(),
            accuracy,
            performance_penalty: isolation.performance_penalty(),
            utilization_penalty: isolation.utilization_penalty(),
        })
        .collect();
    let core_isolation_only = core_cells
        .iter()
        .zip(&accuracies[stack_cells.len()..])
        .map(|(isolation, &accuracy)| (isolation.setting, accuracy))
        .collect();

    Ok((
        IsolationStudy {
            cells,
            core_isolation_only,
        },
        log,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            servers: 6,
            victims: 12,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn study_produces_full_matrix() {
        let study = run_isolation_study(&tiny()).unwrap();
        assert_eq!(study.cells.len(), 18); // 3 settings × 6 stacks
        assert_eq!(study.core_isolation_only.len(), 3);
    }

    #[test]
    fn accuracy_trends_match_the_paper() {
        // At this test's scale each victim is worth ~8 accuracy points, so
        // only the robust Fig. 14 claims are asserted: the full mechanism
        // stack never beats no isolation, and core isolation collapses
        // accuracy for virtualized settings. Per-step monotonicity is
        // checked by the full-scale `fig14_isolation` bench.
        let study = run_isolation_study(&tiny()).unwrap();
        let mean = |idx: usize| -> f64 {
            OsSetting::ALL
                .iter()
                .map(|&s| study.accuracy(s, idx).unwrap())
                .sum::<f64>()
                / 3.0
        };
        let none = mean(0);
        let full = mean(4); // +cache partitioning, pre-core
        let core = mean(5);
        assert!(
            full <= none + 0.1,
            "the full stack should not beat no isolation on average ({none} -> {full})"
        );
        assert!(
            core <= full + 0.1,
            "core isolation should not raise average accuracy ({full} -> {core})"
        );
        // Under the full stack + core isolation, whatever remains
        // detectable must flow through the disk channel — nothing
        // isolates disk (the paper's residual claim).
        assert!(
            core <= none + 0.05,
            "core isolation should not leak more than no isolation ({none} -> {core})"
        );
    }

    #[test]
    fn core_isolation_residual_is_disk_borne() {
        use crate::run_experiment;
        use bolt_sim::LeastLoaded;
        let config = ExperimentConfig {
            isolation: IsolationConfig {
                setting: OsSetting::VirtualMachines,
                mechanisms: Mechanisms::cumulative_stacks()[5],
            },
            ..tiny()
        };
        let results = run_experiment(&config, &LeastLoaded).unwrap();
        for r in &results.records {
            if r.label_correct {
                let disk_visible = r.truth_pressure[bolt_workloads::Resource::DiskBw] > 5.0
                    || r.truth_pressure[bolt_workloads::Resource::DiskCap] > 5.0;
                assert!(
                    disk_visible,
                    "{} detected under full isolation without any disk footprint",
                    r.truth
                );
            }
        }
    }

    #[test]
    fn core_isolation_cells_carry_penalties() {
        let study = run_isolation_study(&tiny()).unwrap();
        for cell in &study.cells {
            if cell.stack == "+core isolation" {
                assert!((cell.performance_penalty - 1.34).abs() < 1e-9);
                assert!((cell.utilization_penalty - 0.45).abs() < 1e-9);
            } else {
                assert!(cell.performance_penalty < 1.1);
            }
        }
    }
}
