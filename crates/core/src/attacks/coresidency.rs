//! VM co-residency detection (paper §5.3).
//!
//! A targeted attacker wants to find where a *specific* victim service
//! lives. The launch strategy: the adversary starts `n` probe VMs
//! simultaneously on random hosts; with `k` victim VMs among `N` servers,
//! the chance at least one probe lands next to a victim is
//! `P(f) = 1 − (1 − k/N)ⁿ`. Each probe runs Bolt's detection to find
//! co-residents of the victim's *type* (e.g. SQL servers). The candidates
//! are then confirmed with a sender/receiver pair: the co-resident sender
//! injects contention on the victim's sensitive resources while an
//! external receiver pings the victim over its public protocol — if the
//! receiver's latency jumps (≈3× in the paper), the sender shares the
//! victim's host.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use bolt_sim::vm::VmRole;
use bolt_sim::{Cluster, VmId};
use bolt_workloads::{catalog, PressureVector};

use crate::detector::Detector;
use crate::telemetry::{Phase, Telemetry};
use crate::BoltError;

/// The analytic placement probability `P(f) = 1 − (1 − k/N)ⁿ`.
///
/// # Panics
///
/// Panics if `servers` is zero or `victim_vms > servers`.
pub fn placement_probability(servers: usize, victim_vms: usize, probes: usize) -> f64 {
    assert!(servers > 0, "need at least one server");
    assert!(victim_vms <= servers, "more victim VMs than servers");
    1.0 - (1.0 - victim_vms as f64 / servers as f64).powi(probes as i32)
}

/// Outcome of one co-residency hunt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoResidencyOutcome {
    /// Probe VMs launched.
    pub probes_launched: usize,
    /// The servers the probes landed on.
    pub probed_servers: Vec<usize>,
    /// Servers where detection flagged a co-resident of the target type.
    pub candidate_servers: Vec<usize>,
    /// The server confirmed by the sender/receiver check, if any.
    pub confirmed_server: Option<usize>,
    /// Receiver latency before contention (ms).
    pub baseline_latency_ms: f64,
    /// Receiver latency during sender contention on the confirmed host
    /// (ms); `None` if no candidate confirmed.
    pub contended_latency_ms: Option<f64>,
    /// Total simulated seconds from probe instantiation to confirmation.
    pub elapsed_s: f64,
    /// Total adversarial VMs used (probes + the external receiver).
    pub vms_used: usize,
}

impl CoResidencyOutcome {
    /// The latency amplification the receiver observed on the confirmed
    /// host (1.0 when nothing was confirmed).
    pub fn latency_ratio(&self) -> f64 {
        match self.contended_latency_ms {
            Some(c) if self.baseline_latency_ms > 0.0 => c / self.baseline_latency_ms,
            _ => 1.0,
        }
    }
}

/// Configuration of the co-residency hunt.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoResidencyConfig {
    /// Probe VMs to launch simultaneously (paper: 10).
    pub probes: usize,
    /// Receiver latency ratio above which co-residency is confirmed
    /// (paper observes ≈3.2×; threshold 2.0 is comfortably below).
    pub confirm_ratio: f64,
    /// vCPUs per probe VM.
    pub probe_vcpus: u32,
    /// Minimum detection confidence for a probe's verdict to become a
    /// confirmation candidate. Zero (the default) disables the gate;
    /// under churn, a positive floor drops degraded or shaky verdicts so
    /// the sender/receiver rounds — a full round trip each — are not
    /// wasted confirming phantoms. Skipped hosts get re-probed by the
    /// next fleet.
    pub min_confidence: f64,
}

impl Default for CoResidencyConfig {
    fn default() -> Self {
        CoResidencyConfig {
            probes: 10,
            confirm_ratio: 2.0,
            probe_vcpus: 4,
            min_confidence: 0.0,
        }
    }
}

/// Runs the full §5.3 attack: launch probes on random distinct servers,
/// detect co-residents matching `target_family`, then confirm candidates
/// with the sender/receiver protocol against `target_vm` (the true victim
/// — used only to read the receiver-visible latency, as the external ping
/// would).
///
/// # Errors
///
/// Returns [`BoltError::InvalidExperiment`] if more probes than servers
/// are requested; propagates simulator errors.
pub fn hunt<R: Rng>(
    cluster: &mut Cluster,
    detector: &Detector,
    target_vm: VmId,
    target_family: &str,
    config: &CoResidencyConfig,
    start_t: f64,
    rng: &mut R,
) -> Result<CoResidencyOutcome, BoltError> {
    hunt_telemetry(
        cluster,
        detector,
        target_vm,
        target_family,
        config,
        start_t,
        rng,
        &mut Telemetry::disabled(),
    )
}

/// Same as [`hunt`], recording into `telemetry`: the detection pipeline
/// events of every probe's profiling pass, an [`Phase::AttackExecution`]
/// span over the whole hunt, and the probe fleet's launch/terminate
/// events (drained only when telemetry is enabled).
///
/// # Errors
///
/// Returns [`BoltError::InvalidExperiment`] if more probes than servers
/// are requested; propagates simulator errors.
#[allow(clippy::too_many_arguments)]
pub fn hunt_telemetry<R: Rng>(
    cluster: &mut Cluster,
    detector: &Detector,
    target_vm: VmId,
    target_family: &str,
    config: &CoResidencyConfig,
    start_t: f64,
    rng: &mut R,
    telemetry: &mut Telemetry,
) -> Result<CoResidencyOutcome, BoltError> {
    let hunt_clock = telemetry.begin();
    if config.probes > cluster.server_count() {
        return Err(BoltError::InvalidExperiment {
            reason: format!(
                "{} probes exceed {} servers",
                config.probes,
                cluster.server_count()
            ),
        });
    }

    // Launch probes simultaneously on random distinct servers (avoiding
    // probe-probe co-residency, as the paper prescribes). Full hosts are
    // skipped — the provider would not place a new instance there either.
    let mut servers: Vec<usize> = (0..cluster.server_count()).collect();
    servers.shuffle(rng);
    let mut probes: Vec<(usize, VmId)> = Vec::with_capacity(config.probes);
    let mut elapsed = start_t;
    for &s in &servers {
        if probes.len() == config.probes {
            break;
        }
        if !cluster.server(s)?.can_host(config.probe_vcpus, false) {
            continue;
        }
        let profile = catalog::memcached::profile(&catalog::memcached::Variant::Mixed, rng)
            .with_vcpus(config.probe_vcpus);
        let id = cluster.launch_on(s, profile, VmRole::Adversarial, 0.0)?;
        cluster.set_pressure_override(id, Some(PressureVector::zero()))?;
        probes.push((s, id));
    }

    // Detection pass: every probe profiles its own host *concurrently*
    // (they are independent VMs on distinct servers), so the pass costs
    // the slowest probe's duration, not the sum.
    let mut candidates = Vec::new();
    let mut slowest = 0.0f64;
    for &(server, probe) in &probes {
        let detection = detector.detect_telemetry(cluster, probe, elapsed, rng, telemetry)?;
        slowest = slowest.max(detection.duration_s);
        // Degraded or shaky fingerprints are not worth a confirmation
        // round; the host stays unconfirmed and a later fleet retries it.
        if config.min_confidence > 0.0
            && (detection.degraded.is_some() || detection.confidence < config.min_confidence)
        {
            continue;
        }
        // The verdict matching the target's type carries the co-resident's
        // estimated profile, which the confirmation sender will stress.
        let matching = detection.verdicts.iter().find(|v| {
            v.label()
                .map(|l| l.family() == target_family)
                .unwrap_or(false)
        });
        if let Some(verdict) = matching {
            candidates.push((server, probe, verdict.completed));
        }
    }

    elapsed += slowest;

    // Confirmation pass: baseline receiver latency, then per-candidate
    // contention.
    let (baseline_latency, _) = cluster.performance_of(target_vm, elapsed, rng)?;
    let mut confirmed = None;
    let mut contended_latency = None;
    for &(server, probe, victim_estimate) in &candidates {
        let attack = crate::attacks::dos::craft_attack_from_profile(&victim_estimate);
        cluster.set_pressure_override(probe, Some(attack))?;
        elapsed += 1.0; // one receiver round trip under contention
        let (lat, _) = cluster.performance_of(target_vm, elapsed, rng)?;
        cluster.set_pressure_override(probe, Some(PressureVector::zero()))?;
        if lat / baseline_latency >= config.confirm_ratio {
            confirmed = Some(server);
            contended_latency = Some(lat);
            break;
        }
    }

    // Retire the probe fleet (the adversary pays per instance-hour; and a
    // relaunched fleet must not collide with a stale one).
    let probes_launched = probes.len();
    let probed_servers: Vec<usize> = probes.iter().map(|&(s, _)| s).collect();
    for (_, probe) in probes {
        cluster.terminate(probe)?;
    }

    telemetry.span(
        Phase::AttackExecution,
        start_t,
        elapsed - start_t,
        hunt_clock,
    );
    if telemetry.is_enabled() {
        telemetry.cluster_events(cluster.take_events());
    }

    Ok(CoResidencyOutcome {
        probes_launched,
        probed_servers,
        candidate_servers: candidates.iter().map(|&(s, _, _)| s).collect(),
        confirmed_server: confirmed,
        baseline_latency_ms: baseline_latency,
        contended_latency_ms: contended_latency,
        elapsed_s: elapsed - start_t,
        vms_used: probes_launched + 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_recommender::{HybridRecommender, RecommenderConfig, TrainingData};
    use bolt_sim::{IsolationConfig, ServerSpec};
    use bolt_workloads::training::training_set;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn placement_probability_matches_formula() {
        assert!((placement_probability(40, 1, 10) - (1.0 - 0.975f64.powi(10))).abs() < 1e-12);
        assert_eq!(placement_probability(10, 10, 1), 1.0);
        assert_eq!(placement_probability(10, 0, 5), 0.0);
        // More probes, higher probability.
        assert!(placement_probability(40, 8, 10) > placement_probability(40, 8, 5));
    }

    #[test]
    #[should_panic(expected = "server")]
    fn placement_probability_rejects_zero_servers() {
        placement_probability(0, 0, 1);
    }

    fn detector() -> Detector {
        // Channel-matched training: the recommender is fitted on profiles
        // observed through the same isolation channel the probes see.
        let examples = crate::experiment::observed_training(
            &training_set(7),
            &IsolationConfig::cloud_default(),
        );
        let data = TrainingData::from_examples(examples).unwrap();
        let rec = HybridRecommender::fit(data, RecommenderConfig::default()).unwrap();
        Detector::new(rec, crate::detector::DetectorConfig::default())
    }

    /// Builds the §5.3 scene: a SQL victim on one host, other SQL servers
    /// and misc workloads elsewhere.
    fn scene(rng: &mut StdRng) -> (Cluster, VmId) {
        let mut cluster =
            Cluster::new(12, ServerSpec::xeon(), IsolationConfig::cloud_default()).unwrap();
        let victim_profile =
            catalog::database::profile(&catalog::database::Variant::SqlOltp, rng).with_vcpus(8);
        let victim = cluster
            .launch_on(0, victim_profile, VmRole::Friendly, 0.0)
            .unwrap();
        // Other SQL servers on hosts 1-3.
        for s in 1..4 {
            let p =
                catalog::database::profile(&catalog::database::Variant::SqlOltp, rng).with_vcpus(8);
            cluster.launch_on(s, p, VmRole::Friendly, 0.0).unwrap();
        }
        // Noise tenants elsewhere.
        for s in 4..10 {
            let p = catalog::spark::profile(
                &catalog::spark::Algorithm::KMeans,
                bolt_workloads::DatasetScale::Medium,
                rng,
            )
            .with_vcpus(8);
            cluster.launch_on(s, p, VmRole::Friendly, 0.0).unwrap();
        }
        (cluster, victim)
    }

    #[test]
    fn hunt_confirms_the_victims_host_within_a_few_fleets() {
        let mut rng = StdRng::seed_from_u64(0xC0DE);
        let (mut cluster, victim) = scene(&mut rng);
        let det = detector();
        // Probe every server so a probe definitely lands on host 0; a
        // fleet can still miss a victim caught in a low-traffic phase, so
        // relaunch at later times like a real attacker would.
        let config = CoResidencyConfig {
            probes: 12,
            ..CoResidencyConfig::default()
        };
        let mut confirmed = None;
        for round in 0..6 {
            let outcome = hunt(
                &mut cluster,
                &det,
                victim,
                "mysql",
                &config,
                round as f64 * 150.0,
                &mut rng,
            )
            .unwrap();
            assert_eq!(outcome.probed_servers.len(), 12);
            if outcome.confirmed_server.is_some() {
                assert!(
                    outcome.latency_ratio() >= 2.0,
                    "confirmation requires a clear latency jump, got {:.2}x",
                    outcome.latency_ratio()
                );
                confirmed = outcome.confirmed_server;
                break;
            }
        }
        assert_eq!(confirmed, Some(0), "the hunt must locate the victim's host");
    }

    #[test]
    fn unreachable_confidence_floor_drops_every_candidate() {
        let mut rng = StdRng::seed_from_u64(0xC0DE);
        let (mut cluster, victim) = scene(&mut rng);
        let det = detector();
        let config = CoResidencyConfig {
            probes: 12,
            min_confidence: 1.1, // confidence is clamped to [0, 1]
            ..CoResidencyConfig::default()
        };
        let outcome = hunt(&mut cluster, &det, victim, "mysql", &config, 0.0, &mut rng).unwrap();
        assert!(outcome.candidate_servers.is_empty());
        assert!(outcome.confirmed_server.is_none());
        assert_eq!(outcome.latency_ratio(), 1.0);
    }

    #[test]
    fn hunt_with_too_many_probes_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let (mut cluster, victim) = scene(&mut rng);
        let det = detector();
        let config = CoResidencyConfig {
            probes: 99,
            ..CoResidencyConfig::default()
        };
        assert!(matches!(
            hunt(&mut cluster, &det, victim, "mysql", &config, 0.0, &mut rng),
            Err(BoltError::InvalidExperiment { .. })
        ));
    }

    #[test]
    fn hunt_reports_resource_costs() {
        let mut rng = StdRng::seed_from_u64(0xC0DE);
        let (mut cluster, victim) = scene(&mut rng);
        let det = detector();
        let config = CoResidencyConfig {
            probes: 12,
            ..CoResidencyConfig::default()
        };
        let outcome = hunt(&mut cluster, &det, victim, "mysql", &config, 0.0, &mut rng).unwrap();
        assert_eq!(outcome.probes_launched, 12);
        assert_eq!(outcome.vms_used, 13);
        assert!(outcome.elapsed_s > 0.0);
    }
}
