//! The internal (host-based) denial-of-service attack of paper §5.1.
//!
//! Bolt combines the same tunable microbenchmarks it profiles with into a
//! custom contentious program: it configures each benchmark for the
//! victim's most critical resources at an intensity *above* the pressure
//! measured during detection, while keeping CPU usage low. The result
//! degrades the victim dramatically (tail latency up to 140×) without
//! tripping utilization-triggered defenses like live migration — unlike a
//! naive DoS that saturates compute and gets its victim migrated away.

use rand::Rng;
use serde::{Deserialize, Serialize};

use bolt_recommender::Recommendation;
use bolt_sim::{Cluster, VmId};
use bolt_workloads::{PressureVector, Resource};

use crate::detector::Detection;
use crate::telemetry::{Counter, Phase, Telemetry};
use crate::BoltError;

/// How far above the victim's measured pressure the attack drives each
/// targeted resource (paper: "a higher intensity than what memcached can
/// tolerate").
const OVERSHOOT: f64 = 1.3;

/// How many of the victim's critical resources the attack targets.
const TARGET_RESOURCES: usize = 3;

/// CPU pressure the crafted attack allows itself — low enough to stay
/// under migration monitors (duty-cycled cache/network kernels).
const ATTACK_CPU_BUDGET: f64 = 15.0;

/// Floor on the attack intensity for a targeted resource: merely matching
/// a lightly-loaded victim's pressure would not saturate anything.
const MIN_TARGET_INTENSITY: f64 = 85.0;

/// Crafts the contention vector for a Bolt DoS against a detected victim:
/// the victim's top critical resources at `OVERSHOOT`× their estimated
/// pressure (floored at saturation-grade intensity), everything else
/// idle, CPU capped at the stealth budget.
pub fn craft_attack(recommendation: &Recommendation) -> PressureVector {
    craft_attack_from_profile(&recommendation.completed)
}

/// [`craft_attack`] gated on detection quality: a DoS aimed at a
/// misidentified victim wastes the attacker's stealth budget on the wrong
/// resources (and may light up a monitor for nothing), so the attack is
/// refused outright when the detection is degraded — churn contaminated
/// the window, the probe budget ran out — or its confidence sits below
/// `min_confidence`. The caller's recourse is to re-fingerprint, exactly
/// as the paper's attacker re-probes before striking.
///
/// # Errors
///
/// Returns [`BoltError::DetectionAborted`] when the detection is degraded,
/// under-confident, or carries no verdict at all.
pub fn craft_attack_guarded(
    detection: &Detection,
    min_confidence: f64,
) -> Result<PressureVector, BoltError> {
    if let Some(reason) = detection.degraded {
        return Err(BoltError::DetectionAborted {
            reason: format!("refusing to craft DoS from a degraded detection: {reason}"),
        });
    }
    if detection.confidence < min_confidence {
        return Err(BoltError::DetectionAborted {
            reason: format!(
                "detection confidence {:.2} below the attack floor {:.2}",
                detection.confidence, min_confidence
            ),
        });
    }
    match detection.primary() {
        Some(verdict) => Ok(craft_attack(verdict)),
        None => Err(BoltError::DetectionAborted {
            reason: "no co-resident verdict to target".to_string(),
        }),
    }
}

/// Same as [`craft_attack`] but from a raw pressure estimate.
pub fn craft_attack_from_profile(victim_pressure: &PressureVector) -> PressureVector {
    let mut attack = PressureVector::zero();
    let mut targeted = 0;
    for r in victim_pressure.ranked() {
        if targeted == TARGET_RESOURCES {
            break;
        }
        // Stressing CPU would light up the very signal migration monitors
        // watch, and capacity resources are partitioned per tenant — a
        // co-resident cannot squeeze them. Skip both.
        if r == Resource::Cpu || r.is_capacity() {
            continue;
        }
        if victim_pressure[r] <= 0.0 {
            break;
        }
        attack[r] = (victim_pressure[r] * OVERSHOOT)
            .max(MIN_TARGET_INTENSITY)
            .clamp(0.0, 100.0);
        targeted += 1;
    }
    attack[Resource::Cpu] = ATTACK_CPU_BUDGET;
    attack
}

/// The naive DoS baseline: a compute-intensive kernel saturating the
/// adversary's CPUs (and nothing else in particular).
pub fn naive_attack() -> PressureVector {
    PressureVector::from_pairs(&[
        (Resource::Cpu, 100.0),
        (Resource::L1d, 40.0),
        (Resource::L2, 30.0),
    ])
}

/// One sample of the Fig. 13 timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DosSample {
    /// Simulated time (seconds since attack start).
    pub time_s: f64,
    /// Victim p99 latency (milliseconds).
    pub p99_latency_ms: f64,
    /// Host CPU utilization (percent) on the victim's current server.
    pub cpu_utilization: f64,
    /// True while the victim is mid-migration (unavailable).
    pub migrating: bool,
}

/// The result of a DoS timeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DosTimeline {
    /// Per-second samples.
    pub samples: Vec<DosSample>,
    /// Time at which the migration defense fired, if it did.
    pub migration_at: Option<f64>,
}

impl DosTimeline {
    /// The peak latency amplification over the uncontended baseline.
    pub fn peak_amplification(&self, baseline_ms: f64) -> f64 {
        self.samples
            .iter()
            .map(|s| s.p99_latency_ms / baseline_ms)
            .fold(0.0, f64::max)
    }

    /// Mean latency amplification over the final quarter of the timeline —
    /// the steady state after any migration completed.
    pub fn final_amplification(&self, baseline_ms: f64) -> f64 {
        let n = self.samples.len();
        if n == 0 {
            return 1.0;
        }
        let tail = &self.samples[n - n / 4..];
        let sum: f64 = tail.iter().map(|s| s.p99_latency_ms / baseline_ms).sum();
        sum / tail.len() as f64
    }
}

/// Configuration of the Fig. 13 DoS-vs-defense run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DosRunConfig {
    /// Attack duration in seconds (Fig. 13 shows 120 s).
    pub horizon_s: f64,
    /// Utilization threshold that triggers migration (paper: 70%).
    pub migration_threshold: f64,
    /// Migration overhead in seconds (paper: 8 s for the memcached VM).
    pub migration_overhead_s: f64,
    /// Seconds of *sustained* over-threshold utilization before the
    /// defense commits to a migration — production defenses do not react
    /// to one-second spikes, which is why the paper's naive attacker only
    /// loses its victim at t = 80 s.
    pub sustained_s: f64,
}

impl Default for DosRunConfig {
    fn default() -> Self {
        DosRunConfig {
            horizon_s: 120.0,
            migration_threshold: 70.0,
            migration_overhead_s: 8.0,
            sustained_s: 75.0,
        }
    }
}

/// Runs a DoS attack against `victim` with the given contention vector and
/// the live-migration defense armed: utilization is sampled every second,
/// and when it exceeds the threshold the victim is moved to the least
/// loaded host (performance degrades further during the move, then
/// recovers).
///
/// # Errors
///
/// Propagates [`BoltError`] for unknown VMs; a failed migration (full
/// cluster) leaves the victim in place, as in a real operator's retry loop.
pub fn run_dos<R: Rng>(
    cluster: &mut Cluster,
    attacker: VmId,
    victim: VmId,
    attack: PressureVector,
    config: &DosRunConfig,
    rng: &mut R,
) -> Result<DosTimeline, BoltError> {
    run_dos_telemetry(
        cluster,
        attacker,
        victim,
        attack,
        config,
        rng,
        &mut Telemetry::disabled(),
    )
}

/// Same as [`run_dos`], recording into `telemetry`: an
/// [`Phase::AttackExecution`] span over the whole run, one
/// [`Counter::MigrationsTriggered`] tick whenever the defense moves the
/// victim, a [`Counter::ProbeSamples`] total for the per-second
/// utilization samples, and the cluster's migration events (drained only
/// when telemetry is enabled).
///
/// # Errors
///
/// Propagates [`BoltError`] for unknown VMs; a failed migration (full
/// cluster) leaves the victim in place, as in a real operator's retry loop.
#[allow(clippy::too_many_arguments)]
pub fn run_dos_telemetry<R: Rng>(
    cluster: &mut Cluster,
    attacker: VmId,
    victim: VmId,
    attack: PressureVector,
    config: &DosRunConfig,
    rng: &mut R,
    telemetry: &mut Telemetry,
) -> Result<DosTimeline, BoltError> {
    let attack_clock = telemetry.begin();
    cluster.set_pressure_override(attacker, Some(attack))?;
    let mut samples = Vec::with_capacity(config.horizon_s as usize);
    let mut migration_at: Option<f64> = None;
    let mut migration_done: Option<f64> = None;
    let mut over_threshold_since: Option<f64> = None;

    let mut t = 0.0;
    while t < config.horizon_s {
        let server = cluster.vm(victim)?.server;
        let util = cluster.cpu_utilization(server, t, rng)?;
        let migrating =
            matches!((migration_at, migration_done), (Some(s), Some(d)) if t >= s && t < d);

        let (mut latency, _) = cluster.performance_of(victim, t, rng)?;
        if migrating {
            // Mid-migration the victim is effectively unavailable; latency
            // keeps degrading (paper: "while during migration performance
            // continues to degrade").
            latency *= 2.0;
        }

        samples.push(DosSample {
            time_s: t,
            p99_latency_ms: latency,
            cpu_utilization: util,
            migrating,
        });

        // The defense samples utilization every second and reacts once the
        // exceedance has been sustained.
        if migration_at.is_none() {
            if util > config.migration_threshold {
                let since = *over_threshold_since.get_or_insert(t);
                if t - since >= config.sustained_s {
                    let vcpus = cluster.vm(victim)?.vcpus();
                    if let Some(target) =
                        cluster.least_loaded_server(vcpus).filter(|&s| s != server)
                    {
                        migration_at = Some(t);
                        migration_done = Some(t + config.migration_overhead_s);
                        cluster.migrate(victim, target)?;
                        telemetry.count(Counter::MigrationsTriggered, 1);
                    }
                }
            } else {
                over_threshold_since = None;
            }
        }
        t += 1.0;
    }

    cluster.set_pressure_override(attacker, None)?;
    telemetry.count(Counter::ProbeSamples, samples.len() as u64);
    telemetry.span(Phase::AttackExecution, 0.0, config.horizon_s, attack_clock);
    if telemetry.is_enabled() {
        telemetry.cluster_events(cluster.take_events());
    }
    Ok(DosTimeline {
        samples,
        migration_at,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_sim::vm::VmRole;
    use bolt_sim::{IsolationConfig, ServerSpec};
    use bolt_workloads::catalog;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xD05)
    }

    fn setup() -> (Cluster, VmId, VmId, f64) {
        let mut r = rng();
        let mut cluster =
            Cluster::new(4, ServerSpec::xeon(), IsolationConfig::cloud_default()).unwrap();
        // The victim service occupies most of the host (Fig. 1's "N vCPU"
        // victim) and carries steady daytime load — the regime where a DoS
        // matters.
        let victim_profile =
            catalog::memcached::profile(&catalog::memcached::Variant::ReadHeavyKb, &mut r)
                .with_vcpus(12)
                .with_load(bolt_workloads::LoadPattern::Constant { level: 0.7 });
        let baseline = victim_profile.base_latency_ms();
        let victim = cluster
            .launch_on(0, victim_profile, VmRole::Friendly, 0.0)
            .unwrap();
        let adv_profile = catalog::memcached::profile(&catalog::memcached::Variant::Mixed, &mut r);
        let attacker = cluster
            .launch_on(0, adv_profile, VmRole::Adversarial, 0.0)
            .unwrap();
        cluster
            .set_pressure_override(attacker, Some(PressureVector::zero()))
            .unwrap();
        (cluster, attacker, victim, baseline)
    }

    #[test]
    fn crafted_attack_targets_critical_resources_with_low_cpu() {
        let victim = PressureVector::from_pairs(&[
            (Resource::L1i, 81.0),
            (Resource::Llc, 78.0),
            (Resource::NetBw, 50.0),
            (Resource::Cpu, 35.0),
        ]);
        let attack = craft_attack_from_profile(&victim);
        assert_eq!(attack[Resource::L1i], 100.0); // 81 * 1.3 clamped
        assert!(attack[Resource::Llc] > 90.0);
        assert!(attack[Resource::Cpu] <= 20.0, "attack must stay CPU-quiet");
        assert_eq!(attack[Resource::DiskBw], 0.0);
    }

    #[test]
    fn guarded_crafting_refuses_degraded_or_shaky_detections() {
        use crate::detector::DegradedReason;
        let fake = |confidence: f64, degraded: Option<DegradedReason>| {
            let completed = PressureVector::from_pairs(&[
                (Resource::Llc, 80.0),
                (Resource::MemBw, 70.0),
                (Resource::NetBw, 45.0),
            ]);
            Detection {
                verdicts: vec![bolt_recommender::Recommendation {
                    scores: vec![],
                    completed,
                    characteristics: bolt_workloads::ResourceCharacteristics::from_pressure(
                        &completed,
                    ),
                }],
                sweep: vec![],
                snapshot: bolt_probes::Snapshot {
                    readings: vec![],
                    duration_s: 10.0,
                },
                duration_s: 10.0,
                used_shutter: false,
                confidence,
                degraded,
                mrc: None,
                anytime: None,
            }
        };

        let clean = fake(0.9, None);
        let attack = craft_attack_guarded(&clean, 0.6).unwrap();
        assert!(attack[Resource::Llc] > 90.0);
        assert!(attack[Resource::Cpu] <= 20.0);

        let shaky = fake(0.3, None);
        let err = craft_attack_guarded(&shaky, 0.6).unwrap_err();
        assert!(matches!(err, BoltError::DetectionAborted { .. }));
        assert!(err.to_string().contains("0.30"));

        let churned = fake(0.9, Some(DegradedReason::ChurnDetected));
        let err = craft_attack_guarded(&churned, 0.6).unwrap_err();
        assert!(err.to_string().contains("churn"));

        let mut idle = fake(1.0, None);
        idle.verdicts.clear();
        assert!(matches!(
            craft_attack_guarded(&idle, 0.6),
            Err(BoltError::DetectionAborted { .. })
        ));
    }

    #[test]
    fn crafted_attack_never_stresses_cpu_as_target() {
        let victim = PressureVector::from_pairs(&[
            (Resource::Cpu, 90.0),
            (Resource::L1d, 60.0),
            (Resource::L2, 55.0),
        ]);
        let attack = craft_attack_from_profile(&victim);
        assert!(attack[Resource::Cpu] <= 20.0);
        assert!(attack[Resource::L1d] > 70.0);
    }

    #[test]
    fn bolt_attack_degrades_victim_without_migration() {
        let (mut cluster, attacker, victim, baseline) = setup();
        let mut r = rng();
        let victim_pressure = *cluster.vm(victim).unwrap().profile.base_pressure();
        let attack = craft_attack_from_profile(&victim_pressure);
        let timeline = run_dos(
            &mut cluster,
            attacker,
            victim,
            attack,
            &DosRunConfig::default(),
            &mut r,
        )
        .unwrap();
        assert!(
            timeline.migration_at.is_none(),
            "Bolt's low-utilization attack must not trip the 70% monitor"
        );
        let amp = timeline.final_amplification(baseline);
        assert!(amp > 3.0, "steady-state amplification {amp} too weak");
    }

    #[test]
    fn naive_attack_triggers_migration_and_victim_recovers() {
        let (mut cluster, attacker, victim, baseline) = setup();
        let mut r = rng();
        let timeline = run_dos(
            &mut cluster,
            attacker,
            victim,
            naive_attack(),
            &DosRunConfig::default(),
            &mut r,
        )
        .unwrap();
        assert!(
            timeline.migration_at.is_some(),
            "CPU-saturating attack must trip the monitor"
        );
        // After migration the victim sits alone on a fresh host: latency
        // returns to nominal.
        let final_amp = timeline.final_amplification(baseline);
        assert!(
            final_amp < 2.0,
            "victim should recover after migration, got {final_amp}x"
        );
        assert_ne!(
            cluster.vm(victim).unwrap().server,
            0,
            "victim must have moved"
        );
    }

    #[test]
    fn bolt_outlasts_naive_beyond_migration_point() {
        // The Fig. 13 punchline: past the migration time, Bolt keeps
        // hurting while the naive attack's victim has recovered.
        let mut r = rng();
        let (mut c1, a1, v1, baseline) = setup();
        let victim_pressure = *c1.vm(v1).unwrap().profile.base_pressure();
        let bolt = run_dos(
            &mut c1,
            a1,
            v1,
            craft_attack_from_profile(&victim_pressure),
            &DosRunConfig::default(),
            &mut r,
        )
        .unwrap();
        let (mut c2, a2, v2, _) = setup();
        let naive = run_dos(
            &mut c2,
            a2,
            v2,
            naive_attack(),
            &DosRunConfig::default(),
            &mut r,
        )
        .unwrap();
        assert!(bolt.final_amplification(baseline) > naive.final_amplification(baseline) * 2.0);
    }

    #[test]
    fn timeline_samples_every_second() {
        let (mut cluster, attacker, victim, _) = setup();
        let mut r = rng();
        let config = DosRunConfig {
            horizon_s: 30.0,
            ..DosRunConfig::default()
        };
        let timeline = run_dos(
            &mut cluster,
            attacker,
            victim,
            naive_attack(),
            &config,
            &mut r,
        )
        .unwrap();
        assert_eq!(timeline.samples.len(), 30);
    }
}
