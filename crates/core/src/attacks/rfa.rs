//! The resource-freeing attack (RFA) of paper §5.2.
//!
//! An RFA modifies a victim's workload so it yields resources to the
//! adversary. The adversarial VM runs two components: the *beneficiary*
//! (the program whose performance the attacker wants to improve — the
//! paper uses `mcf`) and the *helper* (a program that saturates the
//! victim's critical resource). The victim stalls on that resource,
//! makes less progress, and its pressure on *other* resources drops —
//! freeing them up for the beneficiary.
//!
//! Bolt makes the attack practical by identifying the victim's dominant
//! resource automatically; the helper then saturates exactly that.

use rand::Rng;
use serde::{Deserialize, Serialize};

use bolt_sim::vm::VmRole;
use bolt_sim::Cluster;
use bolt_workloads::{perf, PressureVector, Resource, WorkloadKind, WorkloadProfile};

use crate::detector::Detection;
use crate::telemetry::{Phase, Telemetry};
use crate::BoltError;

/// Builds the helper contention vector: saturate the victim's dominant
/// resource (and only it — the helper must not collide with the
/// beneficiary's own critical resources).
pub fn helper_pressure(victim_dominant: Resource) -> PressureVector {
    PressureVector::from_pairs(&[(victim_dominant, 95.0)])
}

/// Picks the helper's target resource from a detection, gated on its
/// quality. An RFA helper saturating the *wrong* resource slows the
/// beneficiary down instead of speeding it up (it contends with its own
/// side), so a degraded or under-confident fingerprint aborts the attack
/// plan — the attacker should re-fingerprint instead.
///
/// # Errors
///
/// Returns [`BoltError::DetectionAborted`] when the detection is degraded,
/// its confidence sits below `min_confidence`, or it carries no verdict.
pub fn plan_helper_target(
    detection: &Detection,
    min_confidence: f64,
) -> Result<Resource, BoltError> {
    if let Some(reason) = detection.degraded {
        return Err(BoltError::DetectionAborted {
            reason: format!("refusing to plan RFA from a degraded detection: {reason}"),
        });
    }
    if detection.confidence < min_confidence {
        return Err(BoltError::DetectionAborted {
            reason: format!(
                "detection confidence {:.2} below the RFA floor {:.2}",
                detection.confidence, min_confidence
            ),
        });
    }
    match detection.primary() {
        Some(verdict) => Ok(verdict.completed.dominant()),
        None => Err(BoltError::DetectionAborted {
            reason: "no co-resident verdict to free resources from".to_string(),
        }),
    }
}

/// The measured impact of one RFA run (one Table 2 row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RfaOutcome {
    /// The victim's family label.
    pub victim: String,
    /// The resource the helper saturated.
    pub target_resource: Resource,
    /// Victim performance change: negative = degradation. For interactive
    /// victims this is the relative QPS change; for batch victims the
    /// relative execution-time change mapped to a rate (−0.36 = 36% slower
    /// ⇒ reported as −36%).
    pub victim_delta: f64,
    /// Beneficiary performance change: positive = improvement in execution
    /// time.
    pub beneficiary_delta: f64,
}

/// Runs one RFA: places the victim, the beneficiary, and the helper on one
/// host, measures the beneficiary's slowdown with the helper off and on,
/// and the victim's degradation.
///
/// # Errors
///
/// Propagates [`BoltError`] from the simulator.
pub fn run_rfa<R: Rng>(
    cluster: &mut Cluster,
    server: usize,
    victim_profile: WorkloadProfile,
    beneficiary_profile: WorkloadProfile,
    rng: &mut R,
) -> Result<RfaOutcome, BoltError> {
    run_rfa_telemetry(
        cluster,
        server,
        victim_profile,
        beneficiary_profile,
        rng,
        &mut Telemetry::disabled(),
    )
}

/// Same as [`run_rfa`], recording into `telemetry`: an
/// [`Phase::AttackExecution`] span over the run, a gauge of the helper's
/// pressure on the victim's dominant resource, and the cluster's
/// launch/terminate events (drained only when telemetry is enabled).
///
/// # Errors
///
/// Propagates [`BoltError`] from the simulator.
pub fn run_rfa_telemetry<R: Rng>(
    cluster: &mut Cluster,
    server: usize,
    victim_profile: WorkloadProfile,
    beneficiary_profile: WorkloadProfile,
    rng: &mut R,
    telemetry: &mut Telemetry,
) -> Result<RfaOutcome, BoltError> {
    let attack_clock = telemetry.begin();
    let victim_kind = victim_profile.kind();
    let victim_family = victim_profile.label().family().to_string();
    let victim_dominant = victim_profile.base_pressure().dominant();
    let victim_load = victim_profile.load().level(50.0);

    let victim = cluster.launch_on(server, victim_profile, VmRole::Friendly, 0.0)?;
    let beneficiary = cluster.launch_on(server, beneficiary_profile, VmRole::Adversarial, 0.0)?;
    // The helper is a third VM slot on the same host (part of the
    // adversary's footprint).
    let mut r2 = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0x42);
    let helper_profile = bolt_workloads::catalog::speccpu::profile(
        &bolt_workloads::catalog::speccpu::Benchmark::Gobmk,
        &mut r2,
    )
    .with_vcpus(4);
    let helper = cluster.launch_on(server, helper_profile, VmRole::Adversarial, 0.0)?;

    // Phase 1: helper idle. Measure baseline for both parties.
    cluster.set_pressure_override(helper, Some(PressureVector::zero()))?;
    let t = 50.0;
    let victim_interference_before = cluster.interference_on(victim, t, rng)?;
    let victim_state_pressure_before = {
        let state = cluster.vm(victim)?;
        let progress = perf::progress_rate(&state.profile, &victim_interference_before);
        state.profile.pressure_at(t, progress, rng)
    };

    // Phase 2: helper saturates the victim's dominant resource.
    cluster.set_pressure_override(helper, Some(helper_pressure(victim_dominant)))?;
    let victim_interference_after = cluster.interference_on(victim, t, rng)?;
    let victim_state_pressure_after = {
        let state = cluster.vm(victim)?;
        let progress = perf::progress_rate(&state.profile, &victim_interference_after);
        state.profile.pressure_at(t, progress, rng)
    };

    // Victim degradation, by kind.
    let victim_state = cluster.vm(victim)?;
    let victim_delta = match victim_kind {
        WorkloadKind::Interactive => {
            let before = perf::qps_loss(
                &victim_state.profile,
                &victim_interference_before,
                victim_load,
            );
            let after = perf::qps_loss(
                &victim_state.profile,
                &victim_interference_after,
                victim_load,
            );
            -(after - before)
        }
        WorkloadKind::Batch => {
            let before =
                perf::batch_slowdown_factor(&victim_state.profile, &victim_interference_before);
            let after =
                perf::batch_slowdown_factor(&victim_state.profile, &victim_interference_after);
            -((after - before) / after)
        }
    };

    // Beneficiary improvement. The beneficiary and helper are coordinated
    // components of the adversary (the paper runs them inside one VM), so
    // the beneficiary's performance is driven by the *victim's* pressure
    // alone: the helper duty-cycles around it. As the victim stalls, its
    // pressure on the beneficiary's resources relaxes.
    let beneficiary_state = cluster.vm(beneficiary)?;
    let before =
        perf::batch_slowdown_factor(&beneficiary_state.profile, &victim_state_pressure_before);
    let after =
        perf::batch_slowdown_factor(&beneficiary_state.profile, &victim_state_pressure_after);
    let beneficiary_delta = (before - after) / before;

    // Clean up the experiment's VMs so the cluster can be reused.
    cluster.terminate(victim)?;
    cluster.terminate(beneficiary)?;
    cluster.terminate(helper)?;

    let helper_vector = helper_pressure(victim_dominant);
    telemetry.gauge(victim_dominant, helper_vector[victim_dominant]);
    telemetry.span(Phase::AttackExecution, 0.0, t, attack_clock);
    if telemetry.is_enabled() {
        telemetry.cluster_events(cluster.take_events());
    }

    Ok(RfaOutcome {
        victim: victim_family,
        target_resource: victim_dominant,
        victim_delta,
        beneficiary_delta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_sim::{IsolationConfig, ServerSpec};
    use bolt_workloads::catalog;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x2FA)
    }

    fn cluster() -> Cluster {
        Cluster::new(1, ServerSpec::xeon(), IsolationConfig::cloud_default()).unwrap()
    }

    fn mcf(r: &mut StdRng) -> WorkloadProfile {
        catalog::speccpu::profile(&catalog::speccpu::Benchmark::Mcf, r)
    }

    #[test]
    fn helper_targets_single_resource() {
        let h = helper_pressure(Resource::NetBw);
        assert_eq!(h[Resource::NetBw], 95.0);
        assert_eq!(h[Resource::Cpu], 0.0);
        assert_eq!(h.top(1), vec![Resource::NetBw]);
    }

    #[test]
    fn helper_target_planning_gates_on_detection_quality() {
        use crate::detector::DegradedReason;
        let completed =
            PressureVector::from_pairs(&[(Resource::MemBw, 85.0), (Resource::Llc, 60.0)]);
        let mut detection = Detection {
            verdicts: vec![bolt_recommender::Recommendation {
                scores: vec![],
                completed,
                characteristics: bolt_workloads::ResourceCharacteristics::from_pressure(&completed),
            }],
            sweep: vec![],
            snapshot: bolt_probes::Snapshot {
                readings: vec![],
                duration_s: 10.0,
            },
            duration_s: 10.0,
            used_shutter: false,
            confidence: 0.9,
            degraded: None,
            mrc: None,
            anytime: None,
        };
        assert_eq!(
            plan_helper_target(&detection, 0.6).unwrap(),
            Resource::MemBw
        );

        detection.confidence = 0.2;
        assert!(matches!(
            plan_helper_target(&detection, 0.6),
            Err(BoltError::DetectionAborted { .. })
        ));

        detection.confidence = 0.9;
        detection.degraded = Some(DegradedReason::BudgetExhausted);
        let err = plan_helper_target(&detection, 0.6).unwrap_err();
        assert!(err.to_string().contains("budget"));
    }

    #[test]
    fn rfa_on_spark_frees_resources_for_mcf() {
        // Table 2's third row: memory-bound Spark k-means victim, mcf
        // beneficiary, memory-bandwidth helper.
        let mut r = rng();
        let mut c = cluster();
        let victim = catalog::spark::profile(
            &catalog::spark::Algorithm::KMeans,
            bolt_workloads::DatasetScale::Large,
            &mut r,
        )
        .with_vcpus(8);
        let outcome = run_rfa(&mut c, 0, victim, mcf(&mut r), &mut r).unwrap();
        assert_eq!(outcome.target_resource, Resource::MemBw);
        assert!(
            outcome.victim_delta < -0.15,
            "victim should degrade markedly, got {}",
            outcome.victim_delta
        );
        assert!(
            outcome.beneficiary_delta > 0.02,
            "beneficiary should improve, got {}",
            outcome.beneficiary_delta
        );
    }

    #[test]
    fn rfa_on_webserver_costs_qps() {
        let mut r = rng();
        let mut c = cluster();
        let victim = catalog::webserver::profile(&catalog::webserver::Variant::Dynamic, &mut r)
            .with_vcpus(8);
        let outcome = run_rfa(&mut c, 0, victim, mcf(&mut r), &mut r).unwrap();
        assert!(
            outcome.victim_delta < -0.1,
            "webserver QPS should fall, got {}",
            outcome.victim_delta
        );
    }

    #[test]
    fn rfa_cleans_up_its_vms() {
        let mut r = rng();
        let mut c = cluster();
        let before = c.vm_ids().count();
        let victim = catalog::hadoop::profile(
            &catalog::hadoop::Algorithm::Svm,
            bolt_workloads::DatasetScale::Medium,
            &mut r,
        );
        run_rfa(&mut c, 0, victim, mcf(&mut r), &mut r).unwrap();
        assert_eq!(c.vm_ids().count(), before);
    }
}
