//! The attacks Bolt's detection enables (paper §5).
//!
//! * [`dos`] — the internal denial-of-service attack: custom contention
//!   targeting the victim's critical resources while staying below
//!   utilization-triggered defenses (§5.1, Fig. 13).
//! * [`rfa`] — the resource-freeing attack: a helper stalls the victim on
//!   its dominant resource so a beneficiary can reclaim everything else
//!   (§5.2, Table 2).
//! * [`coresidency`] — VM co-residency detection: probe launch strategy,
//!   type detection, and sender/receiver confirmation (§5.3).

pub mod coresidency;
pub mod dos;
pub mod rfa;
