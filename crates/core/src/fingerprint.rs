//! Fingerprint heatmaps: P(application class | resource-pressure pair).
//!
//! Figure 2 of the paper visualizes how strongly pairs of resource
//! pressures identify an application class: e.g. very high L1-i plus high
//! LLC pressure means "memcached" with high probability, while any disk
//! traffic at all rules it out. This module regenerates those maps
//! empirically, the way the paper derived them: from a *population* of
//! application instances (every catalog family, multiple variants,
//! dataset scales and input-load levels), each instance drops its
//! pressure pair into a grid cell, and a cell's probability is the
//! fraction of its occupants belonging to the target family (with
//! Laplace smoothing for sparse cells).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use bolt_workloads::{Resource, WorkloadProfile};

use crate::experiment::victim_set;
use crate::telemetry::{Counter, Phase, Telemetry};

/// The miss-rate-curve channel's contribution to a detection
/// fingerprint: the observed cache-allocation sweep, one co-resident
/// response per allocation level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MrcFingerprint {
    /// Response at level `k`, measured while the probe occupied
    /// `(k + 1) / points` of the LLC. Each value is in `[0, 100]`.
    pub points: Vec<f64>,
    /// Simulated seconds the sweep cost on top of the pressure probes.
    pub duration_s: f64,
}

impl MrcFingerprint {
    /// RMS distance to another sweep of the same length; sweeps of
    /// different lengths are incomparable and return `f64::INFINITY`.
    pub fn rms_distance(&self, other: &MrcFingerprint) -> f64 {
        if self.points.len() != other.points.len() || self.points.is_empty() {
            return f64::INFINITY;
        }
        let sum: f64 = self
            .points
            .iter()
            .zip(&other.points)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        (sum / self.points.len() as f64).sqrt()
    }
}

/// A `grid × grid` probability map over one resource pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Heatmap {
    /// Resource on the x axis.
    pub x: Resource,
    /// Resource on the y axis.
    pub y: Resource,
    /// Grid resolution per axis.
    pub grid: usize,
    /// `grid × grid` probabilities, row-major with `y` varying by row
    /// (row 0 = lowest `y`).
    pub cells: Vec<f64>,
    /// Population count per cell (same layout).
    pub counts: Vec<u32>,
}

impl Heatmap {
    /// The probability at grid cell `(ix, iy)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn at(&self, ix: usize, iy: usize) -> f64 {
        assert!(
            ix < self.grid && iy < self.grid,
            "cell ({ix},{iy}) out of range"
        );
        self.cells[iy * self.grid + ix]
    }

    /// The pressure value at the center of grid index `i`.
    pub fn center(&self, i: usize) -> f64 {
        (i as f64 + 0.5) * 100.0 / self.grid as f64
    }

    /// The cell with the highest probability, as `(ix, iy, p)`.
    pub fn hottest(&self) -> (usize, usize, f64) {
        let mut best = (0, 0, 0.0);
        for iy in 0..self.grid {
            for ix in 0..self.grid {
                let p = self.at(ix, iy);
                if p > best.2 {
                    best = (ix, iy, p);
                }
            }
        }
        best
    }

    /// Mean probability over one column (fixed `x` index).
    pub fn column_mean(&self, ix: usize) -> f64 {
        (0..self.grid).map(|iy| self.at(ix, iy)).sum::<f64>() / self.grid as f64
    }
}

/// The resource pairs Fig. 2 plots.
pub const FIG2_PAIRS: [(Resource, Resource); 5] = [
    (Resource::L1i, Resource::Llc),
    (Resource::L1d, Resource::Cpu),
    (Resource::MemCap, Resource::MemBw),
    (Resource::DiskCap, Resource::NetBw),
    (Resource::DiskBw, Resource::L2),
];

/// Draws the instance population the heatmaps are estimated from: a
/// diverse set of application instances observed at several input-load
/// levels.
pub fn population(instances: usize, seed: u64) -> Vec<WorkloadProfile> {
    let mut rng = StdRng::seed_from_u64(seed);
    let base = victim_set(instances.div_ceil(2).max(1), &mut rng);
    let mut out = Vec::with_capacity(instances);
    // Busy-period observations (Fig. 2 maps measured pressure at
    // meaningful load; a map of idle services would collapse every family
    // into the low-pressure corner).
    'outer: for level in [1.0, 0.8] {
        for p in &base {
            if out.len() == instances {
                break 'outer;
            }
            out.push(p.at_load_level(level));
        }
    }
    out
}

/// Computes the probability heatmap for `family` over the `(x, y)` pair
/// from an instance population.
///
/// Laplace smoothing (`α = 1` pseudo-instance spread across families)
/// keeps empty cells near the base rate instead of hard zero.
///
/// # Panics
///
/// Panics if `grid` is zero or `profiles` is empty.
pub fn family_heatmap(
    profiles: &[WorkloadProfile],
    family: &str,
    x: Resource,
    y: Resource,
    grid: usize,
) -> Heatmap {
    assert!(grid > 0, "grid must be nonzero");
    assert!(!profiles.is_empty(), "population must be nonempty");
    let mut hits = vec![0u32; grid * grid];
    let mut totals = vec![0u32; grid * grid];
    let base_rate = profiles
        .iter()
        .filter(|p| p.label().family() == family)
        .count() as f64
        / profiles.len() as f64;
    for p in profiles {
        let px = p.base_pressure()[x];
        let py = p.base_pressure()[y];
        let ix = ((px / 100.0 * grid as f64) as usize).min(grid - 1);
        let iy = ((py / 100.0 * grid as f64) as usize).min(grid - 1);
        totals[iy * grid + ix] += 1;
        if p.label().family() == family {
            hits[iy * grid + ix] += 1;
        }
    }
    let cells = hits
        .iter()
        .zip(&totals)
        .map(|(&h, &n)| (h as f64 + base_rate) / (n as f64 + 1.0))
        .collect();
    Heatmap {
        x,
        y,
        grid,
        cells,
        counts: totals,
    }
}

/// [`family_heatmap`] recording the estimation pass into `telemetry`: a
/// [`Phase::ContentMatch`] span covering the grid build (heatmap
/// estimation is content matching against a population rather than a
/// training set) and one [`Counter::ProbeSamples`] tick per instance
/// observation dropped into the grid.
///
/// # Panics
///
/// Same conditions as [`family_heatmap`].
pub fn family_heatmap_telemetry(
    profiles: &[WorkloadProfile],
    family: &str,
    x: Resource,
    y: Resource,
    grid: usize,
    telemetry: &mut Telemetry,
) -> Heatmap {
    let clock = telemetry.begin();
    let map = family_heatmap(profiles, family, x, y, grid);
    telemetry.count(Counter::ProbeSamples, profiles.len() as u64);
    telemetry.span(Phase::ContentMatch, 0.0, 0.0, clock);
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop() -> Vec<WorkloadProfile> {
        population(600, 0xF162)
    }

    #[test]
    fn memcached_hot_at_high_l1i_high_llc() {
        let map = family_heatmap(&pop(), "memcached", Resource::L1i, Resource::Llc, 4);
        // The Fig. 2 signature: the high-L1i/high-LLC corner is far hotter
        // than the low-low corner.
        let high = map.at(3, 3).max(map.at(2, 3)).max(map.at(3, 2));
        let low = map.at(0, 0);
        assert!(
            high > low + 0.2,
            "P(memcached | high L1i, high LLC)={high} vs low-corner {low}"
        );
    }

    #[test]
    fn disk_traffic_rules_out_memcached() {
        let p = pop();
        let map = family_heatmap(&p, "memcached", Resource::DiskBw, Resource::L2, 4);
        // memcached does zero disk I/O: any disk traffic above the first
        // column's range rules it out, so those columns sit at or below
        // the smoothed base rate while the zero-disk column rises above.
        let zero_disk = map.column_mean(0);
        let disk_active = (map.column_mean(1) + map.column_mean(2) + map.column_mean(3)) / 3.0;
        let base_rate = p
            .iter()
            .filter(|w| w.label().family() == "memcached")
            .count() as f64
            / p.len() as f64;
        assert!(
            zero_disk > disk_active + 0.02,
            "zero disk should look more like memcached: {zero_disk} vs {disk_active}"
        );
        assert!(
            disk_active <= base_rate + 0.02,
            "disk-active columns should carry no memcached evidence: {disk_active} vs base {base_rate}"
        );
    }

    #[test]
    fn hadoop_hot_at_high_disk() {
        let map = family_heatmap(&pop(), "hadoop", Resource::DiskBw, Resource::Cpu, 4);
        assert!(
            map.column_mean(2).max(map.column_mean(3)) > map.column_mean(0),
            "hadoop should occupy the disk-heavy columns"
        );
    }

    #[test]
    fn probabilities_are_probabilities_and_counts_cover_population() {
        let p = pop();
        let map = family_heatmap(&p, "spark", Resource::MemBw, Resource::Llc, 5);
        for &c in &map.cells {
            assert!((0.0..=1.0).contains(&c));
        }
        let total: u32 = map.counts.iter().sum();
        assert_eq!(total as usize, p.len());
    }

    #[test]
    fn heatmap_accessors() {
        let map = family_heatmap(&pop(), "hadoop", Resource::DiskBw, Resource::Cpu, 3);
        assert_eq!(map.cells.len(), 9);
        assert!((map.center(0) - 16.666).abs() < 0.01);
        let (_, _, hp) = map.hottest();
        assert!((0.0..=1.0).contains(&hp));
    }

    #[test]
    fn heatmap_telemetry_matches_the_plain_map_and_records() {
        let p = population(100, 7);
        let plain = family_heatmap(&p, "memcached", Resource::L1i, Resource::Llc, 4);
        let mut telemetry = Telemetry::for_unit(0);
        let recorded = family_heatmap_telemetry(
            &p,
            "memcached",
            Resource::L1i,
            Resource::Llc,
            4,
            &mut telemetry,
        );
        assert_eq!(plain, recorded);
        let log = crate::telemetry::TelemetryLog::from_events(telemetry.into_events());
        assert_eq!(log.counter_total(Counter::ProbeSamples), 100);
        assert!(log.to_jsonl().contains("content-match"));
    }

    #[test]
    fn population_is_deterministic_and_sized() {
        let a = population(100, 7);
        let b = population(100, 7);
        assert_eq!(a.len(), 100);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.base_pressure(), y.base_pressure());
        }
    }
}
