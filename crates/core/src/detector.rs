//! The detection engine: iterative profiling + recommendation + the
//! multi-co-resident disentangling moves of paper §3.3.
//!
//! Each detection iteration takes a 2–3 benchmark snapshot ([`bolt_probes`])
//! and feeds it to the hybrid recommender. If no match clears the 0.1
//! correlation threshold, either the application type was never seen or the
//! signal entangles several co-residents; Bolt then:
//!
//! * adds an extra **core** benchmark when the first core reading was
//!   non-zero (hyperthreads are never shared between instances, so core
//!   readings isolate the core-sharing co-runner), or
//! * falls back to **shutter profiling** when no core is shared, scoring
//!   the low-pressure frame (one co-resident alone) and the residual.
//!
//! Detection repeats every `interval_s` (default 20 s, Fig. 10a) to track
//! application phases (Fig. 8).
//!
//! Hunts are oblivious to probe batching: when the cluster snapshot they
//! probe carries a shared sweep memo (`Cluster::share_sweeps`, used by the
//! region-scale service), repeated sweeps against the same server are
//! answered from another hunt's memoized result with byte-identical
//! values, so nothing in this engine changes between batched and
//! unbatched execution.

use std::sync::Arc;

use rand::Rng;
use serde::{Deserialize, Serialize};

use bolt_probes::{Profiler, ProfilerConfig, ShutterConfig, Snapshot};
use bolt_recommender::{HybridRecommender, Recommendation, RecommenderStats};
use bolt_sim::{Cluster, FaultPlan, ProbeFaultKind, TraceEvent, VmId};
use bolt_workloads::{AppLabel, ResourceCharacteristics};

use crate::fingerprint::MrcFingerprint;
use crate::telemetry::{Counter, Phase, Telemetry};
use crate::BoltError;

/// Why a detection's verdict should not be trusted at face value. Graceful
/// degradation under churn: the detector says *why* it is unsure instead of
/// returning a confident wrong label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradedReason {
    /// The sample-validity screen saw a pressure discontinuity between the
    /// two sweeps of the window: the co-resident set (or a server's
    /// capacity) shifted mid-measurement.
    ChurnDetected,
    /// The retry/backoff probe budget ran out before a clean window was
    /// found; the verdict is the best effort from contaminated data.
    BudgetExhausted,
    /// The window produced too few usable samples (e.g. a measurement
    /// blackout) to attempt matching at all.
    InsufficientSamples,
    /// The hunt experienced injected probe faults (dropped samples, noise
    /// bursts) even though the final window passed the validity screen;
    /// the verdict may rest on contaminated measurements. Set by the
    /// service layer, which refuses to pass fault-touched verdicts off as
    /// clean completions.
    FaultTainted,
}

impl std::fmt::Display for DegradedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DegradedReason::ChurnDetected => "churn detected mid-window",
            DegradedReason::BudgetExhausted => "probe budget exhausted",
            DegradedReason::InsufficientSamples => "insufficient usable samples",
            DegradedReason::FaultTainted => "probe faults touched the hunt",
        })
    }
}

/// Bounded re-probe policy for churn-robust detection: contaminated or
/// blacked-out windows are retried after a growing backoff, with all probe
/// time charged against an explicit budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Extra windows allowed beyond the regular iteration schedule.
    pub max_retries: usize,
    /// Wait before the first re-probe (simulated seconds).
    pub initial_backoff_s: f64,
    /// Backoff growth factor per retry.
    pub backoff_mult: f64,
    /// Total probe-seconds budget across all windows and retries.
    pub probe_budget_s: f64,
    /// When true, an exhausted budget aborts with
    /// [`BoltError::DetectionAborted`] instead of returning a degraded
    /// best-effort detection.
    pub abort_on_exhaustion: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            initial_backoff_s: 15.0,
            backoff_mult: 2.0,
            probe_budget_s: 1.0e9,
            abort_on_exhaustion: false,
        }
    }
}

/// Detection-engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Seconds between detection iterations (paper default: 20 s).
    pub interval_s: f64,
    /// Iterations after which detection gives up (paper: jobs not
    /// identified by the sixth iteration did not benefit from more).
    pub max_iterations: usize,
    /// Profiling policy.
    pub profiler: ProfilerConfig,
    /// Shutter-mode parameters for the no-shared-core fallback.
    pub shutter: ShutterConfig,
    /// Enables the shutter fallback (ablation switch).
    pub enable_shutter: bool,
    /// Enables mixture decomposition (ablation switch); when off, every
    /// signal is matched as if it came from a single co-resident.
    pub enable_decomposition: bool,
    /// Enables the temporal-differencing verdict (ablation switch).
    pub enable_differencing: bool,
    /// Enables the miss-rate-curve channel: a cache-allocation sweep per
    /// window whose curve breaks near-degenerate decomposition ties.
    /// Off by default — the pressure-only pipeline is the paper baseline.
    pub mrc_channel: bool,
    /// Allocation levels per cache sweep when the channel is on.
    pub mrc_points: usize,
    /// Enables the anytime iterative-deepening window: probes are taken
    /// one batch at a time in expected-information order, the
    /// decomposition is refined after each batch, and the window returns
    /// the moment its confidence crosses
    /// [`DetectorConfig::confidence_threshold`]. Off by default — the
    /// fixed-shape window is the paper baseline and stays byte-identical.
    pub anytime: bool,
    /// Confidence at which an anytime window stops deepening.
    pub confidence_threshold: f64,
    /// Probe budget per anytime window (individual microbenchmark runs,
    /// including the seed snapshot). The default matches the fixed
    /// window's nominal two-sweep cost, so a window that never converges
    /// ends up with the same signal quality the baseline gets — the
    /// savings come entirely from early exits, never from a ceiling on
    /// hard cases.
    pub anytime_max_probes: usize,
    /// Probes taken between decomposition refinements when deepening.
    pub anytime_batch: usize,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            interval_s: 20.0,
            max_iterations: 6,
            profiler: ProfilerConfig::default(),
            shutter: ShutterConfig {
                frames: 12,
                interval_s: 0.8,
                frame_s: 0.03,
            },
            enable_shutter: true,
            enable_decomposition: true,
            enable_differencing: true,
            mrc_channel: false,
            mrc_points: 8,
            anytime: false,
            confidence_threshold: 0.7,
            anytime_max_probes: 20,
            anytime_batch: 1,
        }
    }
}

/// The outcome of one detection iteration: one verdict per co-resident
/// Bolt believes it disentangled, strongest first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// Per-co-resident verdicts, primary first. Empty means "idle host".
    pub verdicts: Vec<Recommendation>,
    /// The noise-averaged observation sweep this detection matched
    /// against; feed it back as the `baseline` of a later detection to
    /// difference across iterations.
    pub sweep: Vec<(bolt_workloads::Resource, f64)>,
    /// The profiling snapshot that produced them.
    pub snapshot: Snapshot,
    /// Simulated seconds this iteration consumed (profiling + any
    /// fallback).
    pub duration_s: f64,
    /// True if the shutter fallback ran.
    pub used_shutter: bool,
    /// How much to trust the primary verdict, in `[0, 1]`: the primary
    /// match correlation, damped when the window was contaminated. A
    /// confidently idle host reads 1.0.
    pub confidence: f64,
    /// Set when the verdict is degraded — the attack drivers treat any
    /// `Some` as "do not act on this label alone".
    pub degraded: Option<DegradedReason>,
    /// The observed cache-allocation sweep, when the miss-rate-curve
    /// channel ran this window. `None` whenever the channel is off or
    /// the window ended before the sweep (idle, blackout, no signal).
    pub mrc: Option<MrcFingerprint>,
    /// Deepening statistics when the anytime engine produced this
    /// detection; `None` on the fixed-shape window.
    #[serde(default)]
    pub anytime: Option<crate::anytime::AnytimeInfo>,
}

impl Detection {
    /// The primary verdict, if any co-resident was detected.
    pub fn primary(&self) -> Option<&Recommendation> {
        self.verdicts.first()
    }

    /// The primary verdict's label, if any match cleared the threshold.
    pub fn label(&self) -> Option<&AppLabel> {
        self.primary().and_then(|r| r.label())
    }

    /// The primary verdict's resource characteristics — the paper's point:
    /// characteristics survive even when labels fail. `None` only for an
    /// idle host.
    pub fn characteristics(&self) -> Option<&ResourceCharacteristics> {
        self.primary().map(|r| &r.characteristics)
    }

    /// All detected labels, strongest first.
    pub fn labels(&self) -> impl Iterator<Item = &AppLabel> {
        self.verdicts.iter().filter_map(|r| r.label())
    }

    /// True if any verdict's label matches `truth` (exact family+variant).
    pub fn matches_label(&self, truth: &AppLabel) -> bool {
        self.labels().any(|l| l.matches(truth))
    }

    /// True if any verdict's label shares `truth`'s family.
    pub fn matches_family(&self, truth: &AppLabel) -> bool {
        self.labels().any(|l| l.same_family(truth))
    }

    /// True if any verdict's characteristics match `truth`.
    pub fn matches_characteristics(&self, truth: &ResourceCharacteristics) -> bool {
        self.verdicts
            .iter()
            .any(|r| r.characteristics.matches(truth))
    }
}

/// A label observation over time, for phase tracking (Fig. 8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSample {
    /// Simulated time of the detection.
    pub time_s: f64,
    /// The detected label at that time, if any.
    pub label: Option<AppLabel>,
    /// The completed pressure estimate at that time.
    pub pressure: bolt_workloads::PressureVector,
}

/// Filters a snapshot's readings into recommendation observations: when no
/// co-resident shares a physical core with the adversary, core readings of
/// zero mean "cannot see", not "the co-resident is idle there" — pinning
/// them as observations would poison the completed profile, so they are
/// dropped and the core resources are left to the completion stage.
pub(crate) fn usable_observations(snapshot: &Snapshot) -> Vec<(bolt_workloads::Resource, f64)> {
    let blind_cores = !core_signal_usable(snapshot);
    snapshot
        .observations()
        .into_iter()
        .filter(|(r, _)| !(blind_cores && r.is_core()))
        .collect()
}

/// Orients a sweep difference toward the load increase and drops the
/// noise floor: the result is (approximately) Δload × the changing
/// application's fingerprint.
pub(crate) fn orient_difference(
    before: &[(bolt_workloads::Resource, f64)],
    after: &[(bolt_workloads::Resource, f64)],
) -> Vec<(bolt_workloads::Resource, f64)> {
    let mut signed_total = 0.0;
    let mut diffs = Vec::new();
    for &(r, b) in after {
        if let Some(&(_, a)) = before.iter().find(|&&(br, _)| br == r) {
            signed_total += b - a;
            diffs.push((r, a, b));
        }
    }
    diffs
        .into_iter()
        .map(|(r, a, b)| {
            let d = if signed_total >= 0.0 { b - a } else { a - b };
            (r, if d.abs() < 2.5 { 0.0 } else { d.max(0.0) })
        })
        .collect()
}

/// The sample-validity screen: a measurement window is contaminated when
/// the two sweeps disagree sharply on several resources at once. One
/// resource drifting is an application phase (useful signal, fed to the
/// differencing verdict); half the fingerprint jumping in a 25-second gap
/// means the co-resident set itself changed mid-window.
fn window_contaminated(
    sweep1: &[(bolt_workloads::Resource, f64)],
    sweep2: &[(bolt_workloads::Resource, f64)],
) -> bool {
    let mut jumps = 0usize;
    let mut total = 0.0;
    for &(r, a) in sweep1 {
        if let Some(&(_, b)) = sweep2.iter().find(|&&(sr, _)| sr == r) {
            let d = (b - a).abs();
            total += d;
            if d > 15.0 {
                jumps += 1;
            }
        }
    }
    jumps >= 3 && total > 75.0
}

/// Minimum core reading (percentage points) for the core channel to carry
/// a usable signal. Static core sharing produces readings well above this;
/// scheduler-float leakage under weak visibility (VMs) sits below it and
/// would only feed noise into the disentangler.
pub(crate) const CORE_SIGNAL_FLOOR: f64 = 12.0;

pub(crate) fn core_signal_usable(snapshot: &Snapshot) -> bool {
    snapshot
        .readings
        .iter()
        .any(|r| r.resource.is_core() && r.pressure >= CORE_SIGNAL_FLOOR)
}

/// The cluster a detection window observes. Legacy paths probe a frozen
/// cluster; churn-aware paths probe a live one that a [`FaultPlan`] evolves
/// *between* the window's two sweeps — genuine mid-window contamination.
/// The `Fixed` arm makes every hook a no-op, so chaos-off detection runs
/// the exact pre-chaos instruction sequence.
pub(crate) enum ProbeWorld<'a> {
    /// A frozen cluster (the pre-chaos behavior).
    Fixed(&'a Cluster),
    /// A live cluster evolved by a compiled fault plan.
    Live {
        cluster: &'a mut Cluster,
        plan: &'a mut FaultPlan,
        /// Index of this measurement window within the hunt, for the
        /// stateless probe-fault draw.
        window: u64,
    },
}

impl ProbeWorld<'_> {
    pub(crate) fn cluster(&self) -> &Cluster {
        match self {
            ProbeWorld::Fixed(c) => c,
            ProbeWorld::Live { cluster, .. } => cluster,
        }
    }

    /// Applies every fault due by simulated time `t`; returns how many
    /// were injected. No-op (and no RNG use) on a fixed world.
    pub(crate) fn advance(&mut self, t: f64) -> Result<u64, BoltError> {
        match self {
            ProbeWorld::Fixed(_) => Ok(0),
            ProbeWorld::Live { cluster, plan, .. } => Ok(plan.apply_due(cluster, t)?),
        }
    }

    /// The probe-level fault verdict for this window, if any.
    pub(crate) fn probe_fault(&self) -> Option<ProbeFaultKind> {
        match self {
            ProbeWorld::Fixed(_) => None,
            ProbeWorld::Live { plan, window, .. } => plan.probe_fault(*window),
        }
    }

    /// Whether faults can occur at all. The validity screen only runs on
    /// live worlds: on a frozen cluster an inter-sweep discontinuity *is*
    /// the victim's load-pattern phase change — exactly the signal temporal
    /// differencing exists to read, never evidence of churn.
    pub(crate) fn is_live(&self) -> bool {
        matches!(self, ProbeWorld::Live { .. })
    }
}

/// The detection engine bound to one fitted recommender.
///
/// The recommender is held behind an [`Arc`]: cloning a detector (or
/// building many from one [`FitCache`](bolt_recommender::FitCache) entry)
/// shares the trained model rather than duplicating its factor matrices,
/// and all `Parallelism::Threads(n)` hunt workers read the same fit.
#[derive(Debug, Clone)]
pub struct Detector {
    pub(crate) recommender: Arc<HybridRecommender>,
    pub(crate) profiler: Profiler,
    pub(crate) config: DetectorConfig,
}

impl Detector {
    /// Creates a detector. Accepts either an owned
    /// [`HybridRecommender`] (wrapped on the way in) or a shared
    /// `Arc<HybridRecommender>` straight from the fit cache.
    pub fn new(recommender: impl Into<Arc<HybridRecommender>>, config: DetectorConfig) -> Self {
        Detector {
            profiler: Profiler::new(config.profiler),
            recommender: recommender.into(),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// The underlying recommender.
    pub fn recommender(&self) -> &HybridRecommender {
        &self.recommender
    }

    /// The shared handle to the underlying recommender (cheap to clone;
    /// hands the same trained model to other detectors or threads).
    pub fn recommender_arc(&self) -> Arc<HybridRecommender> {
        Arc::clone(&self.recommender)
    }

    /// Runs one detection iteration from `adversary`'s position at time
    /// `t`, applying the §3.3 disentangling moves when the first
    /// recommendation fails to match.
    ///
    /// # Errors
    ///
    /// Returns [`BoltError`] if the adversary VM is unknown or the
    /// numerical pipeline rejects the signal.
    pub fn detect<R: Rng>(
        &self,
        cluster: &Cluster,
        adversary: VmId,
        t: f64,
        rng: &mut R,
    ) -> Result<Detection, BoltError> {
        self.detect_with_baseline(cluster, adversary, t, None, rng)
    }

    /// [`Detector::detect`], recording phase spans, probe-sample counts,
    /// and per-resource pressure gauges into `telemetry`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Detector::detect`].
    pub fn detect_telemetry<R: Rng>(
        &self,
        cluster: &Cluster,
        adversary: VmId,
        t: f64,
        rng: &mut R,
        telemetry: &mut Telemetry,
    ) -> Result<Detection, BoltError> {
        self.detect_with_baseline_telemetry(cluster, adversary, t, None, rng, telemetry)
    }

    /// Like [`Detector::detect`], with an optional observation sweep from a
    /// *previous* iteration. Differencing against a minutes-old baseline
    /// sees slow load drift (diurnal services) that the within-iteration
    /// gap cannot, which is what breaks stable mixture ambiguities over
    /// the iterative detection loop.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Detector::detect`].
    pub fn detect_with_baseline<R: Rng>(
        &self,
        cluster: &Cluster,
        adversary: VmId,
        t: f64,
        baseline: Option<&[(bolt_workloads::Resource, f64)]>,
        rng: &mut R,
    ) -> Result<Detection, BoltError> {
        self.detect_with_baseline_telemetry(
            cluster,
            adversary,
            t,
            baseline,
            rng,
            &mut Telemetry::disabled(),
        )
    }

    /// [`Detector::detect_with_baseline`] with telemetry recording. The
    /// instrumentation points are the pipeline phases: the probe sweep
    /// (snapshot + widening + second sweep), content matching, mixture
    /// decomposition, the shutter fallback, and the plain-recommendation
    /// (SGD completion) fallback.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Detector::detect`].
    pub fn detect_with_baseline_telemetry<R: Rng>(
        &self,
        cluster: &Cluster,
        adversary: VmId,
        t: f64,
        baseline: Option<&[(bolt_workloads::Resource, f64)]>,
        rng: &mut R,
        telemetry: &mut Telemetry,
    ) -> Result<Detection, BoltError> {
        self.detect_window(
            &mut ProbeWorld::Fixed(cluster),
            adversary,
            t,
            baseline,
            rng,
            telemetry,
        )
    }

    /// One detection iteration against a cluster that a [`FaultPlan`] keeps
    /// evolving: faults due before the window apply up front, faults due
    /// mid-window apply between the two sweeps (contaminating the very
    /// measurement), and probe-level faults drop, truncate, or black out
    /// samples. Injected faults land in `telemetry` as cluster events and
    /// [`Counter::FaultsInjected`] increments. `window` indexes this
    /// measurement window within the hunt (for the deterministic
    /// probe-fault draw).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Detector::detect`], plus simulator errors from
    /// applying the fault plan.
    #[allow(clippy::too_many_arguments)]
    pub fn detect_churn_telemetry<R: Rng>(
        &self,
        cluster: &mut Cluster,
        plan: &mut FaultPlan,
        window: u64,
        adversary: VmId,
        t: f64,
        baseline: Option<&[(bolt_workloads::Resource, f64)]>,
        rng: &mut R,
        telemetry: &mut Telemetry,
    ) -> Result<Detection, BoltError> {
        self.detect_window(
            &mut ProbeWorld::Live {
                cluster,
                plan,
                window,
            },
            adversary,
            t,
            baseline,
            rng,
            telemetry,
        )
    }

    /// The shared window pipeline behind both `detect*` families. The
    /// `Fixed` world keeps every chaos hook a no-op so the legacy paths
    /// stay byte-identical; the `Live` world mutates between sweeps.
    /// With [`DetectorConfig::anytime`] set, the fixed-shape pipeline is
    /// replaced wholesale by the iterative-deepening window in
    /// [`crate::anytime`].
    fn detect_window<R: Rng>(
        &self,
        world: &mut ProbeWorld<'_>,
        adversary: VmId,
        t: f64,
        baseline: Option<&[(bolt_workloads::Resource, f64)]>,
        rng: &mut R,
        telemetry: &mut Telemetry,
    ) -> Result<Detection, BoltError> {
        if self.config.anytime {
            return self.detect_anytime_window(world, adversary, t, baseline, rng, telemetry);
        }
        // Faults scheduled before the window begins are already history.
        let pre_faults = world.advance(t)?;
        telemetry.count(Counter::FaultsInjected, pre_faults);

        let sweep_clock = telemetry.begin();
        let mut snapshot = self.profiler.snapshot(world.cluster(), adversary, t, rng)?;

        // An idle host: every probed resource reads (near) zero. Matching
        // a zero signal against anything would be spurious — report "no
        // co-resident detected".
        if snapshot.readings.iter().all(|r| r.pressure <= 6.0) {
            telemetry.count(Counter::ProbeSamples, snapshot.readings.len() as u64);
            telemetry.span(Phase::ProbeSweep, t, snapshot.duration_s, sweep_clock);
            return Ok(Detection {
                duration_s: snapshot.duration_s,
                used_shutter: false,
                verdicts: Vec::new(),
                sweep: Vec::new(),
                snapshot,
                confidence: 1.0,
                degraded: None,
                mrc: None,
                anytime: None,
            });
        }

        // Something is here: widen the snapshot to the full resource set
        // the current visibility allows, then take a *second* sweep after
        // a gap. The two sweeps serve double duty — their average halves
        // the measurement noise feeding the decomposition, and their
        // difference exposes any co-resident whose input load moved in
        // between (the shutter principle at iteration timescale, and the
        // only signal that separates two otherwise-ambiguous
        // decompositions of a static mixture).
        let core_usable = core_signal_usable(&snapshot);
        if core_usable {
            let probed_cores =
                |s: &Snapshot| s.readings.iter().filter(|x| x.resource.is_core()).count();
            while probed_cores(&snapshot) < bolt_workloads::Resource::CORE.len() {
                self.profiler.extra_core_probe(
                    world.cluster(),
                    adversary,
                    t,
                    &mut snapshot,
                    rng,
                )?;
            }
        }
        self.probe_missing_uncore(world.cluster(), adversary, t, &mut snapshot, rng)?;

        let mut sweep1 = usable_observations(&snapshot);
        let gap_s = 25.0;
        let t2 = t + snapshot.duration_s + gap_s;

        // Probe-level fault for this window: lose a sample, cut one short,
        // or black the whole window out. A blackout leaves nothing to
        // match — report "insufficient samples" and charge the lost time.
        if let Some(kind) = world.probe_fault() {
            telemetry.count(Counter::FaultsInjected, 1);
            telemetry.cluster_event(TraceEvent::ProbeFault {
                vm: adversary,
                kind,
                at: t + snapshot.duration_s,
            });
            match kind {
                ProbeFaultKind::Blackout => {
                    telemetry.count(Counter::WindowsDiscarded, 1);
                    telemetry.count(Counter::ProbeSamples, snapshot.readings.len() as u64);
                    snapshot.duration_s += gap_s;
                    telemetry.span(Phase::ProbeSweep, t, snapshot.duration_s, sweep_clock);
                    return Ok(Detection {
                        duration_s: snapshot.duration_s,
                        used_shutter: false,
                        verdicts: Vec::new(),
                        sweep: Vec::new(),
                        snapshot,
                        confidence: 0.0,
                        degraded: Some(DegradedReason::InsufficientSamples),
                        mrc: None,
                        anytime: None,
                    });
                }
                ProbeFaultKind::DroppedSample => {
                    sweep1.pop();
                }
                ProbeFaultKind::TruncatedSample => {
                    if let Some(last) = sweep1.last_mut() {
                        last.1 *= 0.5;
                    }
                }
            }
        }

        // Mid-window churn: faults due before the second sweep land *now*,
        // so sweep2 observes a genuinely different co-resident set.
        let mid_faults = world.advance(t2)?;
        telemetry.count(Counter::FaultsInjected, mid_faults);

        let mut sweep2: Vec<(bolt_workloads::Resource, f64)> = Vec::with_capacity(sweep1.len());
        for &(r, _) in &sweep1 {
            let reading = bolt_probes::Microbenchmark::new(r).measure(
                world.cluster(),
                adversary,
                t2,
                &self.config.profiler.ramp,
                rng,
            )?;
            snapshot.duration_s += reading.duration_s;
            sweep2.push((r, reading.pressure));
        }
        snapshot.duration_s += gap_s;
        telemetry.count(
            Counter::ProbeSamples,
            (snapshot.readings.len() + sweep2.len()) as u64,
        );
        telemetry.span(Phase::ProbeSweep, t, snapshot.duration_s, sweep_clock);

        let averaged: Vec<(bolt_workloads::Resource, f64)> = sweep1
            .iter()
            .zip(&sweep2)
            .map(|(&(r, a), &(_, b))| (r, (a + b) / 2.0))
            .collect();
        for &(r, v) in &averaged {
            telemetry.gauge(r, v);
        }

        // The informative-signal gate: matching needs at least two
        // resources carrying signal clearly above the probe noise floor —
        // a fully-isolated co-resident leaks a lone residual at best, and
        // must stay undetected.
        if averaged.iter().filter(|&&(_, v)| v > 8.0).count() < 2 {
            return Ok(Detection {
                duration_s: snapshot.duration_s,
                used_shutter: false,
                verdicts: Vec::new(),
                sweep: averaged,
                snapshot,
                confidence: 0.0,
                degraded: None,
                mrc: None,
                anytime: None,
            });
        }

        // The miss-rate-curve channel: a cache-allocation sweep taken
        // after the pressure probes. Its curve rides into the
        // decomposition as a tie-breaker over near-degenerate candidate
        // mixtures. With the channel off this block is skipped whole —
        // no RNG draw, no telemetry — so the baseline stays bit-identical.
        let mut mrc_fp: Option<MrcFingerprint> = None;
        if self.config.mrc_channel {
            let mrc_t = t + snapshot.duration_s;
            let mrc_clock = telemetry.begin();
            let mut reading = bolt_probes::measure_mrc_sweep(
                world.cluster(),
                adversary,
                mrc_t,
                self.config.mrc_points,
                &self.config.profiler.ramp,
                rng,
            )?;
            // The per-window probe fault is a stateless draw, so the
            // sweep suffers the same fault the pressure probes did.
            if let Some(kind) = world.probe_fault() {
                match kind {
                    // A blackout window already returned above.
                    ProbeFaultKind::Blackout => {}
                    ProbeFaultKind::DroppedSample => {
                        // The last level is lost; hold the previous one
                        // so the curve keeps its length.
                        if reading.response.len() >= 2 {
                            let held = reading.response[reading.response.len() - 2];
                            *reading.response.last_mut().expect("non-empty sweep") = held;
                        }
                    }
                    ProbeFaultKind::TruncatedSample => {
                        if let Some(last) = reading.response.last_mut() {
                            *last *= 0.5;
                        }
                    }
                }
            }
            snapshot.duration_s += reading.duration_s;
            telemetry.count(Counter::MrcProbePoints, reading.response.len() as u64);
            telemetry.span(Phase::MrcSweep, mrc_t, reading.duration_s, mrc_clock);
            mrc_fp = Some(MrcFingerprint {
                points: reading.response,
                duration_s: reading.duration_s,
            });
        }
        let mrc_observed = mrc_fp.as_ref().map(|f| f.points.as_slice());

        let mut verdicts: Vec<Recommendation> = Vec::new();
        let mut used_shutter = false;

        // Temporal-differencing verdict first: it saw one application's
        // load change alone, so it is the highest-confidence evidence. Two
        // windows are tried — the within-iteration gap, and the drift
        // since a previous iteration's baseline sweep (diurnal services
        // barely move in 25 s but clearly in minutes).
        if self.config.enable_differencing {
            let mut candidates: Vec<Vec<(bolt_workloads::Resource, f64)>> = Vec::new();
            candidates.push(orient_difference(&sweep1, &sweep2));
            if let Some(base) = baseline {
                candidates.push(orient_difference(base, &averaged));
            }
            let best_diff = candidates
                .into_iter()
                .max_by(|a, b| {
                    let ma: f64 = a.iter().map(|&(_, v)| v).sum();
                    let mb: f64 = b.iter().map(|&(_, v)| v).sum();
                    ma.partial_cmp(&mb).expect("finite magnitudes")
                })
                .expect("at least one candidate");
            let magnitude: f64 = best_diff.iter().map(|&(_, v)| v).sum();
            if magnitude > 18.0 && best_diff.len() >= 2 {
                let match_clock = telemetry.begin();
                let scores = self.recommender.match_subspace(&best_diff)?;
                telemetry.span(
                    Phase::ContentMatch,
                    t + snapshot.duration_s,
                    0.0,
                    match_clock,
                );
                if let Some(best) = scores.first() {
                    if best.correlation > 0.6 {
                        let ex = self.recommender.training_data().example(best.index);
                        verdicts.push(Recommendation {
                            characteristics: ResourceCharacteristics::from_pressure(&ex.reference),
                            completed: ex.pressure,
                            scores,
                        });
                    }
                }
            }
        }

        // Mixture decomposition on the noise-averaged observations. With a
        // usable core channel, every candidate is tried under each
        // visibility hypothesis (core-sharer / unshared / scheduler-float);
        // otherwise decomposition runs on the uncore dimensions alone.
        let core_obs: Vec<(bolt_workloads::Resource, f64)> = averaged
            .iter()
            .filter(|(r, _)| r.is_core())
            .copied()
            .collect();
        let uncore_obs: Vec<(bolt_workloads::Resource, f64)> = averaged
            .iter()
            .filter(|(r, _)| r.is_uncore())
            .copied()
            .collect();
        let max_components = if self.config.enable_decomposition {
            3
        } else {
            1
        };
        let mut rec_stats = RecommenderStats::default();
        let decomp_clock = telemetry.begin();
        let components = if core_usable && core_obs.len() >= 2 {
            let float = world.cluster().isolation().float_visibility();
            self.recommender.decompose_with_core_mrc(
                &core_obs,
                &uncore_obs,
                float,
                max_components,
                mrc_observed,
                &mut rec_stats,
            )?
        } else if uncore_obs.len() >= 2 {
            self.recommender.decompose_mixture_mrc(
                &uncore_obs,
                &[],
                max_components,
                mrc_observed,
                &mut rec_stats,
            )?
        } else {
            Vec::new()
        };
        telemetry.span(
            Phase::Decomposition,
            t + snapshot.duration_s,
            0.0,
            decomp_clock,
        );
        telemetry.count(Counter::ShortlistPairHits, rec_stats.shortlist_hits);
        telemetry.count(Counter::ExactPairSearches, rec_stats.exact_searches);
        telemetry.count(Counter::MrcTieBreaks, rec_stats.mrc_tie_breaks);
        for &(idx, _, explained) in &components {
            verdicts.push(self.recommender.component_recommendation(idx, explained));
        }

        // A weak decomposition with no core channel smells like entangled
        // phases (or an unseen app type): shutter mode hunts for a
        // low-load frame exposing a single co-resident (§3.3, Fig. 3).
        let weak = components
            .first()
            .map(|&(_, _, e)| e < 0.55)
            .unwrap_or(true);
        if weak && !core_usable && self.config.enable_shutter {
            used_shutter = true;
            let shutter_t = t + snapshot.duration_s;
            let shutter_clock = telemetry.begin();
            let capture = bolt_probes::shutter_capture(
                world.cluster(),
                adversary,
                shutter_t,
                &self.config.shutter,
                rng,
            )?;
            snapshot.duration_s += capture.duration_s;
            telemetry.count(Counter::ProbeSamples, capture.frames.len() as u64);
            telemetry.span(
                Phase::ShutterCapture,
                shutter_t,
                capture.duration_s,
                shutter_clock,
            );
            if capture.swing() > 0.2 {
                // The low frame is (approximately) one co-resident; the
                // residual is the rest.
                let match_clock = telemetry.begin();
                let low_scores = self.recommender.score_profile(&capture.low_frame)?;
                telemetry.span(
                    Phase::ContentMatch,
                    t + snapshot.duration_s,
                    0.0,
                    match_clock,
                );
                if !low_scores.is_empty() {
                    let residual = capture.residual();
                    verdicts.insert(
                        0,
                        Recommendation {
                            characteristics: ResourceCharacteristics::from_pressure(
                                &capture.low_frame,
                            ),
                            completed: capture.low_frame,
                            scores: low_scores,
                        },
                    );
                    let residual_scores = self.recommender.score_profile(&residual)?;
                    if !residual_scores.is_empty() {
                        verdicts.push(Recommendation {
                            characteristics: ResourceCharacteristics::from_pressure(&residual),
                            completed: residual,
                            scores: residual_scores,
                        });
                    }
                }
            }
        }

        // Fallback: if no structural move produced a verdict, use the
        // plain full-signal recommendation (single co-resident at steady
        // load is exactly this case).
        if verdicts.is_empty() {
            let mut plain_stats = RecommenderStats::default();
            let completion_clock = telemetry.begin();
            let plain = self
                .recommender
                .recommend_with_stats(&averaged, rng, &mut plain_stats)?;
            telemetry.span(
                Phase::MatrixCompletion,
                t + snapshot.duration_s,
                0.0,
                completion_clock,
            );
            telemetry.count(Counter::SgdIterations, plain_stats.sgd_iterations);
            if plain.best().is_some() {
                verdicts.push(plain);
            }
        }
        verdicts.truncate(4);

        // Sample-validity screen + confidence annotation. Pure computation
        // over the already-collected sweeps: it never alters the verdicts,
        // the control flow above, or the RNG stream, so legacy behavior is
        // bit-preserved — callers that ignore the new fields see exactly
        // the pre-chaos results.
        let contaminated = world.is_live() && window_contaminated(&sweep1, &sweep2);
        let mut confidence = verdicts
            .first()
            .and_then(|v| v.best())
            .map(|s| s.correlation.clamp(0.0, 1.0))
            .unwrap_or(0.0);
        let degraded = if contaminated {
            confidence *= 0.4;
            Some(DegradedReason::ChurnDetected)
        } else {
            None
        };

        Ok(Detection {
            duration_s: snapshot.duration_s,
            used_shutter,
            verdicts,
            sweep: averaged,
            snapshot,
            confidence,
            degraded,
            mrc: mrc_fp,
            anytime: None,
        })
    }

    /// Probes every uncore resource the snapshot has not measured yet, so
    /// residual disentangling sees the full uncore picture.
    fn probe_missing_uncore<R: Rng>(
        &self,
        cluster: &Cluster,
        adversary: VmId,
        t: f64,
        snapshot: &mut Snapshot,
        rng: &mut R,
    ) -> Result<(), BoltError> {
        let probed: Vec<bolt_workloads::Resource> =
            snapshot.readings.iter().map(|r| r.resource).collect();
        for r in bolt_workloads::Resource::UNCORE {
            if probed.contains(&r) {
                continue;
            }
            let reading = bolt_probes::Microbenchmark::new(r).measure(
                cluster,
                adversary,
                t + snapshot.duration_s,
                &self.config.profiler.ramp,
                rng,
            )?;
            snapshot.duration_s += reading.duration_s;
            snapshot.readings.push(reading);
        }
        Ok(())
    }

    /// Runs detection iterations every `interval_s` until `accept` returns
    /// true or the iteration budget is exhausted. Returns the accepted (or
    /// last) detection and the number of iterations used — the quantity
    /// Fig. 7 histograms.
    ///
    /// # Errors
    ///
    /// Propagates [`BoltError`] from [`Detector::detect`].
    pub fn detect_until<R, F>(
        &self,
        cluster: &Cluster,
        adversary: VmId,
        start_t: f64,
        accept: F,
        rng: &mut R,
    ) -> Result<(Detection, usize), BoltError>
    where
        R: Rng,
        F: FnMut(&Detection) -> bool,
    {
        self.detect_until_telemetry(
            cluster,
            adversary,
            start_t,
            accept,
            rng,
            &mut Telemetry::disabled(),
        )
    }

    /// [`Detector::detect_until`] with telemetry recording: every
    /// iteration contributes its inner phase spans plus one
    /// [`Phase::DetectionIteration`] span covering the whole iteration.
    ///
    /// # Errors
    ///
    /// Propagates [`BoltError`] from [`Detector::detect`].
    pub fn detect_until_telemetry<R, F>(
        &self,
        cluster: &Cluster,
        adversary: VmId,
        start_t: f64,
        mut accept: F,
        rng: &mut R,
        telemetry: &mut Telemetry,
    ) -> Result<(Detection, usize), BoltError>
    where
        R: Rng,
        F: FnMut(&Detection) -> bool,
    {
        let mut last: Option<(Detection, usize)> = None;
        let mut baseline: Option<Vec<(bolt_workloads::Resource, f64)>> = None;
        for i in 0..self.config.max_iterations.max(1) {
            let t = start_t + i as f64 * self.config.interval_s;
            let iteration_clock = telemetry.begin();
            let d = self.detect_with_baseline_telemetry(
                cluster,
                adversary,
                t,
                baseline.as_deref(),
                rng,
                telemetry,
            )?;
            telemetry.span(Phase::DetectionIteration, t, d.duration_s, iteration_clock);
            let done = accept(&d);
            if !d.sweep.is_empty() {
                baseline = Some(d.sweep.clone());
            }
            last = Some((d, i + 1));
            if done {
                break;
            }
        }
        Ok(last.expect("at least one iteration ran"))
    }

    /// [`Detector::detect_until`] against a churning cluster: the
    /// [`FaultPlan`] keeps injecting faults while the hunt runs, and
    /// windows the validity screen flags (churn mid-window, blacked-out
    /// probes) are discarded and re-probed after a backoff instead of
    /// being trusted. Retries do not consume Fig. 7 iterations; they are
    /// bounded by `policy.max_retries` and by `policy.probe_budget_s` of
    /// total probe-plus-backoff time.
    ///
    /// # Errors
    ///
    /// Propagates [`BoltError`] from [`Detector::detect`], plus
    /// [`BoltError::DetectionAborted`] when the retry budget runs out
    /// with `policy.abort_on_exhaustion` set.
    #[allow(clippy::too_many_arguments)]
    pub fn detect_until_churn<R, F>(
        &self,
        cluster: &mut Cluster,
        plan: &mut FaultPlan,
        policy: &RetryPolicy,
        adversary: VmId,
        start_t: f64,
        accept: F,
        rng: &mut R,
    ) -> Result<(Detection, usize), BoltError>
    where
        R: Rng,
        F: FnMut(&Detection) -> bool,
    {
        self.detect_until_churn_telemetry(
            cluster,
            plan,
            policy,
            adversary,
            start_t,
            accept,
            rng,
            &mut Telemetry::disabled(),
        )
    }

    /// [`Detector::detect_until_churn`] with telemetry recording. On top
    /// of the per-window phase spans, every discarded window increments
    /// [`Counter::WindowsDiscarded`], every re-probe increments
    /// [`Counter::DetectionRetries`], and the chaos engine's cluster
    /// events (arrivals, departures, migrations, degradations) are
    /// drained into the trace after each window.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Detector::detect_until_churn`].
    #[allow(clippy::too_many_arguments)]
    pub fn detect_until_churn_telemetry<R, F>(
        &self,
        cluster: &mut Cluster,
        plan: &mut FaultPlan,
        policy: &RetryPolicy,
        adversary: VmId,
        start_t: f64,
        accept: F,
        rng: &mut R,
        telemetry: &mut Telemetry,
    ) -> Result<(Detection, usize), BoltError>
    where
        R: Rng,
        F: FnMut(&Detection) -> bool,
    {
        self.detect_until_churn_elapsed_telemetry(
            cluster, plan, policy, adversary, start_t, accept, rng, telemetry,
        )
        .map(|(d, iterations, _)| (d, iterations))
    }

    /// [`Detector::detect_until_churn_telemetry`], additionally returning
    /// the total virtual time the hunt consumed — probe windows, retry
    /// backoffs, and inter-iteration intervals included — measured from
    /// `start_t` to the end of the last window. The service loop charges
    /// this against the request's deadline; `Detection::duration_s` alone
    /// covers only the final window.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Detector::detect_until_churn`].
    #[allow(clippy::too_many_arguments)]
    pub fn detect_until_churn_elapsed_telemetry<R, F>(
        &self,
        cluster: &mut Cluster,
        plan: &mut FaultPlan,
        policy: &RetryPolicy,
        adversary: VmId,
        start_t: f64,
        mut accept: F,
        rng: &mut R,
        telemetry: &mut Telemetry,
    ) -> Result<(Detection, usize, f64), BoltError>
    where
        R: Rng,
        F: FnMut(&Detection) -> bool,
    {
        let mut last: Option<(Detection, usize)> = None;
        let mut baseline: Option<Vec<(bolt_workloads::Resource, f64)>> = None;
        let mut window: u64 = 0;
        let mut retries_left = policy.max_retries;
        let mut backoff_s = policy.initial_backoff_s.max(0.0);
        // Probe time and backoff time both charge the budget, but only
        // probe time is "probed seconds" — keep them apart so the
        // exhaustion report stays honest.
        let mut probed_s = 0.0;
        let mut backoff_spent_s = 0.0;
        let mut t = start_t;
        let mut end_t = start_t;
        let mut i = 0;
        let mut churn_observed = false;
        let mut accepted = false;
        while i < self.config.max_iterations.max(1) {
            let iteration_clock = telemetry.begin();
            let mut d = self.detect_churn_telemetry(
                cluster,
                plan,
                window,
                adversary,
                t,
                baseline.as_deref(),
                rng,
                telemetry,
            )?;
            window += 1;
            for event in cluster.take_events() {
                telemetry.cluster_event(event);
            }
            telemetry.span(Phase::DetectionIteration, t, d.duration_s, iteration_clock);
            probed_s += d.duration_s;
            end_t = t + d.duration_s;

            let contaminated = matches!(
                d.degraded,
                Some(DegradedReason::ChurnDetected) | Some(DegradedReason::InsufficientSamples)
            );
            if contaminated {
                churn_observed = true;
                // Inclusive boundary: a retry whose backoff lands exactly
                // on the budget is still affordable.
                if retries_left > 0
                    && probed_s + backoff_spent_s + backoff_s <= policy.probe_budget_s
                {
                    // Discard the window and re-probe after backing off;
                    // the iteration is not consumed and the contaminated
                    // sweep never becomes a baseline.
                    retries_left -= 1;
                    telemetry.count(Counter::DetectionRetries, 1);
                    if d.degraded == Some(DegradedReason::ChurnDetected) {
                        // Blackouts already count themselves at the probe.
                        telemetry.count(Counter::WindowsDiscarded, 1);
                    }
                    backoff_spent_s += backoff_s;
                    t += d.duration_s + backoff_s;
                    backoff_s *= policy.backoff_mult.max(1.0);
                    continue;
                }
                // Out of retries (or probe time): degrade gracefully —
                // keep whatever verdict this window produced, but mark it
                // so consumers know not to act on it blindly.
                let reason = format!(
                    "retry budget exhausted after {} retries, {:.0}s into the hunt \
                     ({:.0}s probed + {:.0}s backoff of {:.0}s allowed)",
                    policy.max_retries - retries_left,
                    t + d.duration_s - start_t,
                    probed_s,
                    backoff_spent_s,
                    policy.probe_budget_s
                );
                if policy.abort_on_exhaustion {
                    return Err(BoltError::DetectionAborted { reason });
                }
                // The anytime window already returns its honest
                // best-so-far confidence at the budget edge; halving it
                // again would double-penalize. The fixed-shape window has
                // no such notion, so its contaminated verdict is damped.
                if !self.config.anytime {
                    d.confidence *= 0.5;
                }
                d.degraded = Some(DegradedReason::BudgetExhausted);
            } else {
                // A clean window proves the burst passed: the next retry
                // (if any) should start from the initial backoff again
                // rather than inherit an earlier burst's inflated wait.
                backoff_s = policy.initial_backoff_s.max(0.0);
            }

            let done = accept(&d);
            if !d.sweep.is_empty() {
                baseline = Some(d.sweep.clone());
            }
            let duration_s = d.duration_s;
            last = Some((d, i + 1));
            if done {
                accepted = true;
                break;
            }
            i += 1;
            // The next window starts one interval after this one *ended*:
            // probe time is wall-clock too, same as on the retry path.
            t += duration_s + self.config.interval_s;
        }
        let (mut d, iterations) = last.expect("at least one window ran");
        // A hunt that saw churn and still never converged cannot vouch for
        // its last verdict: some of the signal it accumulated was measured
        // against a world that changed under it. Degrade loudly instead of
        // letting the stale verdict pass as clean.
        if !accepted && churn_observed && d.degraded.is_none() {
            d.confidence *= 0.4;
            d.degraded = Some(DegradedReason::ChurnDetected);
        }
        Ok((d, iterations, end_t - start_t))
    }

    /// Tracks the co-resident's label over a time horizon, one detection
    /// per interval — the Fig. 8 phase-tracking timeline.
    ///
    /// # Errors
    ///
    /// Propagates [`BoltError`] from [`Detector::detect`].
    pub fn track_phases<R: Rng>(
        &self,
        cluster: &Cluster,
        adversary: VmId,
        start_t: f64,
        horizon_s: f64,
        rng: &mut R,
    ) -> Result<Vec<PhaseSample>, BoltError> {
        let mut out = Vec::new();
        let mut t = start_t;
        while t < start_t + horizon_s {
            let d = self.detect(cluster, adversary, t, rng)?;
            out.push(PhaseSample {
                time_s: t,
                label: d.label().cloned(),
                pressure: d
                    .primary()
                    .map(|r| r.completed)
                    .unwrap_or_else(bolt_workloads::PressureVector::zero),
            });
            t += self.config.interval_s;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_recommender::{RecommenderConfig, TrainingData};
    use bolt_sim::vm::VmRole;
    use bolt_sim::{IsolationConfig, ServerSpec};
    use bolt_workloads::{catalog, training::training_set};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xDE7EC7)
    }

    fn detector() -> Detector {
        let data = TrainingData::from_profiles(&training_set(7)).unwrap();
        let rec = HybridRecommender::fit(data, RecommenderConfig::default()).unwrap();
        Detector::new(rec, DetectorConfig::default())
    }

    fn cluster_with_victims(
        victims: Vec<bolt_workloads::WorkloadProfile>,
        r: &mut StdRng,
    ) -> (Cluster, VmId) {
        let mut cluster =
            Cluster::new(1, ServerSpec::xeon(), IsolationConfig::cloud_default()).unwrap();
        let adv = catalog::memcached::profile(&catalog::memcached::Variant::Mixed, r);
        // The adversarial VM itself stays quiet while profiling.
        let adv_id = cluster.launch_on(0, adv, VmRole::Adversarial, 0.0).unwrap();
        cluster
            .set_pressure_override(adv_id, Some(bolt_workloads::PressureVector::zero()))
            .unwrap();
        for v in victims {
            cluster.launch_on(0, v, VmRole::Friendly, 0.0).unwrap();
        }
        (cluster, adv_id)
    }

    #[test]
    fn detects_single_memcached_victim() {
        let mut r = rng();
        // A production-sized service (Fig. 1's "N vCPU" victim): large
        // enough to share physical cores with the adversary.
        let victim = catalog::memcached::profile(&catalog::memcached::Variant::ReadHeavyKb, &mut r)
            .with_vcpus(8);
        let truth = victim.label().clone();
        let (cluster, adv) = cluster_with_victims(vec![victim], &mut r);
        let det = detector();
        let accept = |d: &Detection| d.matches_family(&truth);
        let (d, iters) = det
            .detect_until(&cluster, adv, 0.0, accept, &mut r)
            .unwrap();
        assert!(iters <= 6);
        assert!(
            d.matches_family(&truth),
            "memcached not among verdicts: {:?}",
            d.labels().map(ToString::to_string).collect::<Vec<_>>()
        );
    }

    #[test]
    fn detects_spark_victim_characteristics() {
        let mut r = rng();
        let victim = catalog::spark::profile(
            &catalog::spark::Algorithm::KMeans,
            bolt_workloads::DatasetScale::Large,
            &mut r,
        );
        // Ground truth lives in observed space: what the isolation channel
        // hides (partitioned memory capacity) is not a detectable — or
        // attackable — characteristic of this environment.
        let truth = bolt_workloads::ResourceCharacteristics::from_pressure(
            &crate::experiment::observe_through(
                victim.base_pressure(),
                &IsolationConfig::cloud_default(),
            ),
        );
        let (cluster, adv) = cluster_with_victims(vec![victim], &mut r);
        let d = detector().detect(&cluster, adv, 30.0, &mut r).unwrap();
        assert!(
            d.matches_characteristics(&truth),
            "no verdict matched truth {truth}; primary: {:?}",
            d.characteristics()
        );
    }

    #[test]
    fn empty_host_yields_no_confident_label() {
        let mut r = rng();
        let (cluster, adv) = cluster_with_victims(vec![], &mut r);
        let d = detector().detect(&cluster, adv, 0.0, &mut r).unwrap();
        // Nothing co-scheduled: no verdicts at all.
        assert!(
            d.verdicts.is_empty(),
            "empty host should yield no verdicts, got {:?}",
            d.labels().map(ToString::to_string).collect::<Vec<_>>()
        );
    }

    #[test]
    fn detect_until_counts_iterations() {
        let mut r = rng();
        let victim = catalog::hadoop::profile(
            &catalog::hadoop::Algorithm::WordCount,
            bolt_workloads::DatasetScale::Large,
            &mut r,
        );
        let (cluster, adv) = cluster_with_victims(vec![victim], &mut r);
        // Never accept: must exhaust the budget.
        let (_, iters) = detector()
            .detect_until(&cluster, adv, 0.0, |_| false, &mut r)
            .unwrap();
        assert_eq!(iters, 6);
        // Always accept: one iteration.
        let (_, iters) = detector()
            .detect_until(&cluster, adv, 0.0, |_| true, &mut r)
            .unwrap();
        assert_eq!(iters, 1);
    }

    #[test]
    fn track_phases_emits_samples_each_interval() {
        let mut r = rng();
        let victim = catalog::speccpu::profile(&catalog::speccpu::Benchmark::Mcf, &mut r);
        let (cluster, adv) = cluster_with_victims(vec![victim], &mut r);
        let samples = detector()
            .track_phases(&cluster, adv, 0.0, 100.0, &mut r)
            .unwrap();
        assert_eq!(samples.len(), 5); // 100 s at 20 s intervals
        for w in samples.windows(2) {
            assert!(w[1].time_s > w[0].time_s);
        }
    }

    #[test]
    fn detection_duration_is_positive_and_bounded() {
        let mut r = rng();
        let victim = catalog::cassandra::profile(&catalog::cassandra::Variant::Mixed, &mut r);
        let (cluster, adv) = cluster_with_victims(vec![victim], &mut r);
        let d = detector().detect(&cluster, adv, 0.0, &mut r).unwrap();
        // One full sweep plus the temporal-differencing sweep and gap.
        assert!(d.duration_s > 0.0 && d.duration_s < 120.0);
    }

    // ---- retry-loop accounting regressions -------------------------------
    //
    // The probe-fault draw is a pure hash of (seed, window), so a plan
    // whose windows fault in a prescribed pattern can be found by seed
    // scan — fully deterministic, no RNG state consumed.

    use crate::telemetry::TelemetryEvent;
    use bolt_sim::ChaosConfig;

    fn fault_plan_matching(pattern: &[Option<ProbeFaultKind>]) -> FaultPlan {
        let cfg = ChaosConfig {
            intensity: 1.0,
            probe_fault_rate: 0.5,
            ..ChaosConfig::none()
        };
        for seed in 0..500_000u64 {
            let plan = FaultPlan::compile(&cfg, seed, 0, 0.0, 5000.0);
            if pattern
                .iter()
                .enumerate()
                .all(|(w, want)| plan.probe_fault(w as u64) == *want)
            {
                return plan;
            }
        }
        panic!("no fault-plan seed matches {pattern:?}");
    }

    /// The `(sim_start_s, sim_duration_s)` of every detection window, in
    /// execution order — the observable the accounting fixes are pinned by.
    fn window_spans(events: &[TelemetryEvent]) -> Vec<(f64, f64)> {
        events
            .iter()
            .filter_map(|e| match e {
                TelemetryEvent::Span {
                    phase: Phase::DetectionIteration,
                    sim_start_s,
                    sim_duration_s,
                    ..
                } => Some((*sim_start_s, *sim_duration_s)),
                _ => None,
            })
            .collect()
    }

    fn churn_setup() -> (Cluster, VmId, StdRng) {
        let mut r = rng();
        let victim = catalog::memcached::profile(&catalog::memcached::Variant::ReadHeavyKb, &mut r)
            .with_vcpus(8);
        let (cluster, adv) = cluster_with_victims(vec![victim], &mut r);
        (cluster, adv, StdRng::seed_from_u64(0xB0FF))
    }

    #[test]
    fn clean_window_resets_the_backoff() {
        // Windows: blackout → clean → blackout. The second retry must wait
        // `initial_backoff_s` again, not the doubled backoff the first
        // burst left behind.
        let (mut cluster, adv, mut r) = churn_setup();
        let mut plan = fault_plan_matching(&[
            Some(ProbeFaultKind::Blackout),
            None,
            Some(ProbeFaultKind::Blackout),
            None,
        ]);
        let det = Detector::new(
            detector().recommender_arc(),
            DetectorConfig {
                max_iterations: 2,
                ..DetectorConfig::default()
            },
        );
        let policy = RetryPolicy {
            max_retries: 4,
            initial_backoff_s: 15.0,
            backoff_mult: 2.0,
            ..RetryPolicy::default()
        };
        let mut telemetry = Telemetry::for_unit(0);
        det.detect_until_churn_telemetry(
            &mut cluster,
            &mut plan,
            &policy,
            adv,
            30.0,
            |_| false,
            &mut r,
            &mut telemetry,
        )
        .unwrap();
        let spans = window_spans(&telemetry.into_events());
        assert_eq!(spans.len(), 4, "2 iterations + 2 retries");
        let (s0, d0) = spans[0];
        let (s1, d1) = spans[1];
        let (s2, d2) = spans[2];
        let (s3, _) = spans[3];
        assert_eq!(s0, 30.0);
        // Retry after the first blackout: probe time + initial backoff.
        assert!((s1 - (s0 + d0 + 15.0)).abs() < 1e-9, "{s1} vs {}", s0 + d0);
        // Accepted (clean) window: the next iteration starts one interval
        // after the window *ended* — probe time is wall-clock here too.
        assert!((s2 - (s1 + d1 + 20.0)).abs() < 1e-9, "{s2} vs {}", s1 + d1);
        // The clean window reset the backoff: 15 s again, not 30 s.
        assert!((s3 - (s2 + d2 + 15.0)).abs() < 1e-9, "{s3} vs {}", s2 + d2);
    }

    #[test]
    fn budget_boundary_is_inclusive() {
        let pattern = [
            Some(ProbeFaultKind::Blackout),
            Some(ProbeFaultKind::Blackout),
        ];
        let policy = RetryPolicy {
            max_retries: 1,
            initial_backoff_s: 10.0,
            ..RetryPolicy::default()
        };
        // One iteration only: both windows of the pattern, nothing after.
        let det = Detector::new(
            detector().recommender_arc(),
            DetectorConfig {
                max_iterations: 1,
                ..DetectorConfig::default()
            },
        );
        // First pass: unlimited budget, to learn the window's probe cost.
        let (mut cluster, adv, mut r) = churn_setup();
        let mut plan = fault_plan_matching(&pattern);
        let mut telemetry = Telemetry::for_unit(0);
        det.detect_until_churn_telemetry(
            &mut cluster,
            &mut plan,
            &policy,
            adv,
            30.0,
            |_| false,
            &mut r,
            &mut telemetry,
        )
        .unwrap();
        let spans = window_spans(&telemetry.into_events());
        assert_eq!(spans.len(), 2, "one retry under an unlimited budget");
        let d0 = spans[0].1;

        // Second pass: a budget of exactly probe-cost + backoff. The
        // boundary is inclusive, so the retry must still happen.
        let (mut cluster, adv, mut r) = churn_setup();
        let mut plan = fault_plan_matching(&pattern);
        let exact = RetryPolicy {
            probe_budget_s: d0 + 10.0,
            ..policy
        };
        let mut telemetry = Telemetry::for_unit(0);
        let (d, _) = det
            .detect_until_churn_telemetry(
                &mut cluster,
                &mut plan,
                &exact,
                adv,
                30.0,
                |_| false,
                &mut r,
                &mut telemetry,
            )
            .unwrap();
        let events = telemetry.into_events();
        assert_eq!(
            window_spans(&events).len(),
            2,
            "a retry landing exactly on the budget is affordable"
        );
        // The second window faults too and no retries remain: the hunt
        // degrades to a budget-exhausted best effort.
        assert_eq!(d.degraded, Some(DegradedReason::BudgetExhausted));

        // Just under the exact cost, the retry is no longer affordable.
        let (mut cluster, adv, mut r) = churn_setup();
        let mut plan = fault_plan_matching(&pattern);
        let under = RetryPolicy {
            probe_budget_s: d0 + 10.0 - 1e-6,
            ..policy
        };
        let mut telemetry = Telemetry::for_unit(0);
        let (d, _) = det
            .detect_until_churn_telemetry(
                &mut cluster,
                &mut plan,
                &under,
                adv,
                30.0,
                |_| false,
                &mut r,
                &mut telemetry,
            )
            .unwrap();
        assert_eq!(window_spans(&telemetry.into_events()).len(), 1);
        assert_eq!(d.degraded, Some(DegradedReason::BudgetExhausted));
    }

    #[test]
    fn zero_retries_degrade_without_reprobing() {
        let (mut cluster, adv, mut r) = churn_setup();
        let mut plan = fault_plan_matching(&[Some(ProbeFaultKind::Blackout)]);
        let det = Detector::new(
            detector().recommender_arc(),
            DetectorConfig {
                max_iterations: 1,
                ..DetectorConfig::default()
            },
        );
        let policy = RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        };
        let mut telemetry = Telemetry::for_unit(0);
        let (d, iters) = det
            .detect_until_churn_telemetry(
                &mut cluster,
                &mut plan,
                &policy,
                adv,
                30.0,
                |_| false,
                &mut r,
                &mut telemetry,
            )
            .unwrap();
        let events = telemetry.into_events();
        assert_eq!(window_spans(&events).len(), 1);
        assert_eq!(iters, 1);
        assert_eq!(d.degraded, Some(DegradedReason::BudgetExhausted));
        let retries: u64 = events
            .iter()
            .filter_map(|e| match e {
                TelemetryEvent::Count {
                    counter: Counter::DetectionRetries,
                    delta,
                    ..
                } => Some(*delta),
                _ => None,
            })
            .sum();
        assert_eq!(retries, 0);
    }

    #[test]
    fn zero_budget_blocks_every_retry() {
        let (mut cluster, adv, mut r) = churn_setup();
        let mut plan = fault_plan_matching(&[Some(ProbeFaultKind::Blackout)]);
        let det = Detector::new(
            detector().recommender_arc(),
            DetectorConfig {
                max_iterations: 1,
                ..DetectorConfig::default()
            },
        );
        let policy = RetryPolicy {
            max_retries: 2,
            probe_budget_s: 0.0,
            ..RetryPolicy::default()
        };
        let mut telemetry = Telemetry::for_unit(0);
        let (d, _) = det
            .detect_until_churn_telemetry(
                &mut cluster,
                &mut plan,
                &policy,
                adv,
                30.0,
                |_| false,
                &mut r,
                &mut telemetry,
            )
            .unwrap();
        assert_eq!(window_spans(&telemetry.into_events()).len(), 1);
        assert_eq!(d.degraded, Some(DegradedReason::BudgetExhausted));
    }

    #[test]
    fn shrinking_backoff_mult_clamps_to_one() {
        // backoff_mult < 1 must not shrink the wait between retries.
        let (mut cluster, adv, mut r) = churn_setup();
        let mut plan = fault_plan_matching(&[
            Some(ProbeFaultKind::Blackout),
            Some(ProbeFaultKind::Blackout),
            None,
        ]);
        let det = Detector::new(
            detector().recommender_arc(),
            DetectorConfig {
                max_iterations: 1,
                ..DetectorConfig::default()
            },
        );
        let policy = RetryPolicy {
            max_retries: 2,
            initial_backoff_s: 15.0,
            backoff_mult: 0.5,
            ..RetryPolicy::default()
        };
        let mut telemetry = Telemetry::for_unit(0);
        det.detect_until_churn_telemetry(
            &mut cluster,
            &mut plan,
            &policy,
            adv,
            30.0,
            |_| false,
            &mut r,
            &mut telemetry,
        )
        .unwrap();
        let spans = window_spans(&telemetry.into_events());
        assert_eq!(spans.len(), 3);
        let (s0, d0) = spans[0];
        let (s1, d1) = spans[1];
        let (s2, _) = spans[2];
        assert!((s1 - (s0 + d0 + 15.0)).abs() < 1e-9);
        // Clamped: still 15 s, never 7.5 s.
        assert!((s2 - (s1 + d1 + 15.0)).abs() < 1e-9, "{s2} vs {}", s1 + d1);
    }

    #[test]
    fn exhaustion_report_separates_probe_and_backoff_time() {
        let (mut cluster, adv, mut r) = churn_setup();
        let mut plan = fault_plan_matching(&[Some(ProbeFaultKind::Blackout)]);
        let policy = RetryPolicy {
            max_retries: 0,
            abort_on_exhaustion: true,
            ..RetryPolicy::default()
        };
        let err = detector()
            .detect_until_churn_telemetry(
                &mut cluster,
                &mut plan,
                &policy,
                adv,
                30.0,
                |_| false,
                &mut r,
                &mut Telemetry::disabled(),
            )
            .unwrap_err();
        let BoltError::DetectionAborted { reason } = err else {
            panic!("expected DetectionAborted, got {err}");
        };
        // The report names the retries taken, how far into the hunt (not
        // the absolute clock: the hunt started at t=30), and splits probed
        // seconds from backoff seconds instead of lumping them together.
        assert!(reason.contains("after 0 retries"), "{reason}");
        assert!(reason.contains("s probed + 0s backoff"), "{reason}");
        let into_hunt: f64 = reason
            .split("retries, ")
            .nth(1)
            .and_then(|s| s.split("s into the hunt").next())
            .and_then(|s| s.trim().parse().ok())
            .expect("parsable hunt offset");
        assert!(
            into_hunt < 100.0,
            "offset must be hunt-relative, not absolute: {reason}"
        );
    }
}
