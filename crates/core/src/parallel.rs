//! Deterministic parallel sweep infrastructure.
//!
//! Every harness in this crate (the §3.4 controlled experiment, the §4
//! user study, the §6 isolation sweep, and the Fig. 10 sensitivity sweeps)
//! is a loop of independent, seed-derived work items. This module gives
//! them one shared fan-out primitive, [`sweep`], with a determinism model
//! that makes results *byte-identical for every thread count*:
//!
//! 1. Work item `i` never touches a shared RNG. Instead it derives its own
//!    `StdRng` seed via [`split_seed`]`(base_seed, i)` — a splitmix64 hash
//!    of the configured seed and the item index.
//! 2. [`sweep`] always produces results in item order, regardless of which
//!    worker finished first.
//!
//! Together these mean `Parallelism::Serial`, `Threads(2)` and
//! `Threads(8)` run the exact same per-item RNG streams and assemble the
//! exact same output vector; threading changes wall-clock time only.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How a harness fans its independent work items out over threads.
///
/// The choice never affects results (see the module docs), only speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Parallelism {
    /// Run every item on the calling thread.
    Serial,
    /// Use exactly this many worker threads (clamped to at least 1).
    Threads(usize),
    /// Use one worker per available hardware thread.
    #[default]
    Auto,
}

impl Parallelism {
    /// Number of worker threads to launch for `items` work items.
    pub fn workers(self, items: usize) -> usize {
        let cap = match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        };
        cap.min(items.max(1))
    }
}

/// Derives an independent RNG seed for work item `index` of a sweep keyed
/// by `seed` (splitmix64 finalizer over both).
///
/// Adjacent indices yield statistically unrelated streams, and the
/// derivation depends only on `(seed, index)` — not on scheduling — which
/// is what makes parallel sweeps reproducible.
pub fn split_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Applies `f` to every item of `items`, fanning out over scoped worker
/// threads per `parallelism`, and returns the results **in item order**.
///
/// `f` receives `(index, &item)`; it must derive any randomness it needs
/// from the index (see [`split_seed`]), never from shared mutable state.
/// A panic in any worker propagates to the caller.
pub fn sweep<T, R, F>(items: &[T], parallelism: Parallelism, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = parallelism.workers(items.len());
    if workers <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = f(i, &items[i]);
                *slots[i].lock().expect("sweep slot poisoned") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("sweep slot poisoned")
                .expect("every sweep slot is filled before scope exit")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_seed_varies_by_index_and_seed() {
        let a = split_seed(42, 0);
        let b = split_seed(42, 1);
        let c = split_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, split_seed(42, 0));
    }

    #[test]
    fn sweep_preserves_item_order_for_any_thread_count() {
        let items: Vec<u64> = (0..37).collect();
        let serial = sweep(&items, Parallelism::Serial, |i, &x| (i as u64) * 1000 + x);
        for threads in [1, 2, 3, 8, 64] {
            let parallel = sweep(&items, Parallelism::Threads(threads), |i, &x| {
                (i as u64) * 1000 + x
            });
            assert_eq!(serial, parallel, "threads={threads}");
        }
        assert_eq!(
            serial,
            sweep(&items, Parallelism::Auto, |i, &x| (i as u64) * 1000 + x)
        );
    }

    #[test]
    fn sweep_handles_empty_and_single() {
        let none: Vec<u32> = sweep(&[], Parallelism::Auto, |_, &x: &u32| x);
        assert!(none.is_empty());
        let one = sweep(&[9u32], Parallelism::Threads(8), |i, &x| x + i as u32);
        assert_eq!(one, vec![9]);
    }

    #[test]
    fn workers_respects_mode() {
        assert_eq!(Parallelism::Serial.workers(100), 1);
        assert_eq!(Parallelism::Threads(4).workers(100), 4);
        assert_eq!(Parallelism::Threads(0).workers(100), 1);
        assert_eq!(Parallelism::Threads(16).workers(3), 3);
        assert!(Parallelism::Auto.workers(100) >= 1);
    }
}
