//! Bolt (ASPLOS 2017) reproduction: interference-based application
//! fingerprinting in shared clouds, and the attacks it enables.
//!
//! Bolt is a practical attack system for multi-tenant clouds: an
//! adversarial VM measures the interference it experiences on ten shared
//! resources with tunable microbenchmarks, feeds the sparse signal to a
//! hybrid recommender (SVD collaborative filtering + SGD completion +
//! weighted-Pearson content matching), and thereby determines the type,
//! functionality, and resource characteristics of its co-residents in a
//! few seconds — enabling targeted denial-of-service, resource-freeing,
//! and co-residency attacks that evade utilization-based defenses.
//!
//! This crate is the top of the reproduction stack:
//!
//! * [`detector`] — the iterative detection engine with the paper's §3.3
//!   multi-co-resident disentangling (extra core probes, shutter mode).
//! * [`experiment`] — the §3.4 controlled experiment (40 servers, 108
//!   victims) behind Table 1 and Figs. 6, 7, 9 and 10.
//! * [`robustness`] — the same experiment under deterministic churn:
//!   accuracy and graceful-degradation rates versus chaos intensity.
//! * [`region`] — region-scale stress: thousands of hosts under churn
//!   and probing, with storage-layer telemetry and the scaling curve.
//! * [`service`] — detection as a service: a streaming request loop with
//!   admission control, deadlines, circuit breakers, and replayable
//!   request storms.
//! * [`user_study`] — the §4 EC2 multi-user study behind Figs. 11–12.
//! * [`attacks`] — the §5 attacks: internal DoS, RFA, co-residency
//!   detection.
//! * [`isolation_study`] — the §6 isolation sweep behind Fig. 14.
//! * [`fingerprint`] — Fig. 2's P(class | pressure pair) heatmaps.
//! * [`report`] — table/CSV helpers for the reproduction benches.
//!
//! # Quickstart
//!
//! ```
//! use bolt::detector::{Detector, DetectorConfig};
//! use bolt_recommender::{HybridRecommender, RecommenderConfig, TrainingData};
//! use bolt_sim::{Cluster, IsolationConfig, ServerSpec};
//! use bolt_sim::vm::VmRole;
//! use bolt_workloads::{catalog, training::training_set, PressureVector};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//!
//! // A host with one victim; the adversary lands next to it.
//! let mut cluster = Cluster::new(1, ServerSpec::xeon(), IsolationConfig::cloud_default())?;
//! let adv = cluster.launch_on(
//!     0,
//!     catalog::memcached::profile(&catalog::memcached::Variant::Mixed, &mut rng),
//!     VmRole::Adversarial,
//!     0.0,
//! )?;
//! cluster.set_pressure_override(adv, Some(PressureVector::zero()))?;
//! cluster.launch_on(
//!     0,
//!     catalog::memcached::profile(&catalog::memcached::Variant::ReadHeavyKb, &mut rng),
//!     VmRole::Friendly,
//!     0.0,
//! )?;
//!
//! // Fit the recommender on the 120-app training set and detect.
//! let data = TrainingData::from_profiles(&training_set(7))?;
//! let recommender = HybridRecommender::fit(data, RecommenderConfig::default())?;
//! let detector = Detector::new(recommender, DetectorConfig::default());
//! let detection = detector.detect(&cluster, adv, 60.0, &mut rng)?;
//! println!("co-resident looks like: {:?}", detection.label());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod anytime;
pub mod attacks;
pub mod detector;
mod error;
pub mod events;
pub mod experiment;
pub mod fingerprint;
pub mod isolation_study;
pub mod parallel;
pub mod region;
pub mod report;
pub mod robustness;
pub mod sensitivity;
pub mod service;
pub mod telemetry;
pub mod user_study;

pub use anytime::AnytimeInfo;
pub use bolt_recommender::{FitCache, FitCacheStats};
pub use detector::{DegradedReason, Detection, Detector, DetectorConfig, RetryPolicy};
pub use error::BoltError;
pub use experiment::{
    run_experiment, run_experiment_cache, ExperimentConfig, ExperimentRecord, ExperimentResults,
};
pub use isolation_study::{run_isolation_study, run_isolation_study_cache, IsolationStudy};
pub use parallel::Parallelism;
pub use region::{run_region, run_region_telemetry, RegionConfig, RegionReport, ScalePoint};
pub use robustness::{churn_sweep, churn_sweep_cache, churn_sweep_telemetry, RobustnessPoint};
pub use service::{
    compile_trace, run_service, run_service_cache_telemetry, run_service_telemetry, BreakerConfig,
    Request, RequestOutcome, RequestRecord, ServiceConfig, ServiceReport, ShedPolicy, ShedReason,
};
pub use telemetry::{
    Counter, LatencySummary, Phase, ServiceMetric, Telemetry, TelemetryEvent, TelemetryLog,
};
pub use user_study::{run_user_study, run_user_study_cache, UserStudyConfig, UserStudyResults};
