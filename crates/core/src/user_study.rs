//! The EC2 multi-user study of paper §4 (Figs. 11 and 12).
//!
//! Twenty users submitted 436 jobs of their choosing onto a shared pool of
//! 200 `c3.8xlarge` instances (32 vCPUs each), with a 4-vCPU Bolt VM held
//! back on every instance. Users either picked an instance themselves or
//! let a least-loaded scheduler choose; the training set was *not* updated
//! for the study. Bolt labeled 277 of the 436 jobs by name (it cannot name
//! families it never trained on) but recovered resource characteristics
//! for 385 — enough to drive the §5 attacks against any of them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use bolt_recommender::{FitCache, RecommenderConfig};
use bolt_sim::vm::VmRole;
use bolt_sim::{Cluster, IsolationConfig, ServerSpec, VmId};
use bolt_workloads::catalog::userstudy::{self, UserStudyApp};
use bolt_workloads::{AppLabel, PressureVector, ResourceCharacteristics};

use crate::detector::{Detector, DetectorConfig};
use crate::parallel::{split_seed, sweep, Parallelism};
use crate::telemetry::{Telemetry, TelemetryLog};
use crate::BoltError;

/// Training-set seed of the §4 study: the paper's training set was *not*
/// updated for the user study, so the seed is part of the protocol, not
/// the configuration.
const USER_STUDY_TRAINING_SEED: u64 = 7;

/// User-study configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserStudyConfig {
    /// Instances in the shared pool (paper: 200).
    pub instances: usize,
    /// Participating users (paper: 20).
    pub users: usize,
    /// Total jobs submitted (paper: 436).
    pub jobs: usize,
    /// Fraction of submissions where the user picks an instance manually
    /// instead of deferring to the least-loaded scheduler.
    pub manual_placement_rate: f64,
    /// RNG seed.
    pub seed: u64,
    /// Detector configuration.
    pub detector: DetectorConfig,
    /// Recommender configuration (fitted on the *unchanged* §3.4 training
    /// set).
    pub recommender: RecommenderConfig,
    /// Thread fan-out for the per-job detection passes. Placement stays
    /// serial (it mutates the shared pool); detections run on frozen
    /// cluster snapshots with job-derived RNGs, so results are identical
    /// for every setting (see [`crate::parallel`]).
    #[serde(default)]
    pub parallelism: Parallelism,
}

impl Default for UserStudyConfig {
    fn default() -> Self {
        UserStudyConfig {
            instances: 200,
            users: 20,
            jobs: 436,
            manual_placement_rate: 0.3,
            seed: 0xEC2,
            detector: DetectorConfig::default(),
            recommender: RecommenderConfig::default(),
            parallelism: Parallelism::default(),
        }
    }
}

/// One submitted job's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserStudyRecord {
    /// The submitting user (0-based).
    pub user: usize,
    /// The Fig. 11 application label id (1-based).
    pub app_id: usize,
    /// The application family name.
    pub family: String,
    /// Whether the family exists in the training set (a name label is
    /// achievable at all).
    pub in_training: bool,
    /// The instance the job landed on.
    pub instance: usize,
    /// Jobs active on that instance when this one was detected (including
    /// itself).
    pub co_residents: usize,
    /// Bolt identified the application by name.
    pub name_correct: bool,
    /// Bolt identified the application's resource characteristics.
    pub characteristics_correct: bool,
    /// Ground-truth characteristics (observed space).
    pub truth_characteristics: bolt_workloads::ResourceCharacteristics,
    /// The characteristics Bolt reported.
    pub detected_characteristics: bolt_workloads::ResourceCharacteristics,
}

/// Aggregate user-study results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserStudyResults {
    /// Per-job records.
    pub records: Vec<UserStudyRecord>,
    /// Number of instances that hosted at least one job.
    pub instances_used: usize,
}

impl UserStudyResults {
    /// Jobs labeled correctly by name (the paper's 277/436).
    pub fn named(&self) -> usize {
        self.records.iter().filter(|r| r.name_correct).count()
    }

    /// Jobs whose resource characteristics were identified (the 385/436).
    pub fn characterized(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.characteristics_correct)
            .count()
    }

    /// Occurrences and hits per Fig. 11 label id:
    /// `(app_id, occurrences, named, characterized)`.
    pub fn per_label(&self) -> Vec<(usize, usize, usize, usize)> {
        (1..=userstudy::LABEL_COUNT)
            .filter_map(|id| {
                let subset: Vec<&UserStudyRecord> =
                    self.records.iter().filter(|r| r.app_id == id).collect();
                if subset.is_empty() {
                    return None;
                }
                Some((
                    id,
                    subset.len(),
                    subset.iter().filter(|r| r.name_correct).count(),
                    subset.iter().filter(|r| r.characteristics_correct).count(),
                ))
            })
            .collect()
    }

    /// Histogram of jobs per instance: index = instance, value = jobs that
    /// ran there (Fig. 12c's intensity).
    pub fn jobs_per_instance(&self, instances: usize) -> Vec<usize> {
        let mut h = vec![0usize; instances];
        for r in &self.records {
            if r.instance < instances {
                h[r.instance] += 1;
            }
        }
        h
    }
}

/// Deferred detection work for one placed job: everything the detector
/// needs, captured at launch time so a batch can run on worker threads
/// while placement keeps mutating the live cluster.
struct PendingDetection {
    job: usize,
    user: usize,
    app_id: usize,
    family: String,
    in_training: bool,
    instance: usize,
    co_residents: usize,
    truth_label: AppLabel,
    truth_characteristics: ResourceCharacteristics,
    bolt_vm: VmId,
    detect_t: f64,
    snapshot: Cluster,
}

/// Placed jobs accumulated before their detections fan out; bounds how
/// many cluster snapshots are alive at once.
const DETECTION_CHUNK: usize = 16;

/// Runs one deferred detection against its frozen snapshot.
fn detect_job(
    detector: &Detector,
    seed: u64,
    p: &PendingDetection,
    telemetry: &mut Telemetry,
) -> Result<UserStudyRecord, BoltError> {
    // Job-derived stream: detection noise no longer perturbs the shared
    // placement RNG, and any fan-out order yields identical records.
    let mut rng = StdRng::seed_from_u64(split_seed(seed ^ 0xD37EC7, p.job as u64));
    let detection =
        detector.detect_telemetry(&p.snapshot, p.bolt_vm, p.detect_t, &mut rng, telemetry)?;
    let name_correct = p.in_training && detection.matches_family(&p.truth_label);
    let characteristics_correct = detection.matches_characteristics(&p.truth_characteristics);
    Ok(UserStudyRecord {
        user: p.user,
        app_id: p.app_id,
        family: p.family.clone(),
        in_training: p.in_training,
        instance: p.instance,
        co_residents: p.co_residents,
        name_correct,
        characteristics_correct,
        truth_characteristics: p.truth_characteristics.clone(),
        detected_characteristics: detection
            .characteristics()
            .cloned()
            .unwrap_or_else(|| ResourceCharacteristics::from_pressure(&PressureVector::zero())),
    })
}

/// Fans a batch of deferred detections out over `config.parallelism` and
/// appends the records in job order.
fn flush_detections(
    detector: &Detector,
    config: &UserStudyConfig,
    telemetry_enabled: bool,
    pending: &mut Vec<PendingDetection>,
    records: &mut Vec<UserStudyRecord>,
    log: &mut TelemetryLog,
) -> Result<(), BoltError> {
    let outcomes = sweep(&pending[..], config.parallelism, |_, p| {
        // Job `j` records into unit `j + 1`; unit 0 is reserved for the
        // cluster's own placement events. Batches flush in job order, so
        // the merged stream is identical for every `parallelism` setting.
        let mut telemetry = if telemetry_enabled {
            Telemetry::for_unit(p.job + 1)
        } else {
            Telemetry::disabled()
        };
        detect_job(detector, config.seed, p, &mut telemetry).map(|r| (r, telemetry.into_events()))
    });
    for outcome in outcomes {
        let (record, events) = outcome?;
        records.push(record);
        log.extend(events);
    }
    pending.clear();
    Ok(())
}

/// Runs the user study.
///
/// Jobs arrive over a 4-hour horizon; each is detected shortly after
/// launch by the instance's Bolt VM. A job counts as *named* when its
/// family is in the training set and the detector's label matches the
/// family; it counts as *characterized* when the derived characteristics
/// match ground truth (primary or shutter-secondary verdict).
///
/// Placement runs serially on the shared RNG; detections are deferred
/// onto frozen [`Cluster::snapshot`]s and fan out in
/// [`DETECTION_CHUNK`]-sized batches over `config.parallelism`.
///
/// # Errors
///
/// Propagates [`BoltError`] from the simulator or detector.
pub fn run_user_study(config: &UserStudyConfig) -> Result<UserStudyResults, BoltError> {
    run_user_study_cache(config, &FitCache::new())
}

/// [`run_user_study`] fitting through a shared [`FitCache`] — repeated
/// studies (or a study following other default-config work) reuse the
/// trained recommender instead of refitting it. Byte-identical results.
///
/// # Errors
///
/// Same conditions as [`run_user_study`].
pub fn run_user_study_cache(
    config: &UserStudyConfig,
    cache: &FitCache,
) -> Result<UserStudyResults, BoltError> {
    run_user_study_inner(config, cache, false).map(|(results, _)| results)
}

/// Runs the user study with telemetry enabled.
///
/// Each job's detection pass records into its own unit (`job + 1`);
/// the cluster's placement events (launches, departures) form a trailing
/// unit-0 block. The merged stream is identical for every
/// [`Parallelism`] setting.
///
/// # Errors
///
/// Propagates [`BoltError`] from the simulator or detector.
pub fn run_user_study_telemetry(
    config: &UserStudyConfig,
) -> Result<(UserStudyResults, TelemetryLog), BoltError> {
    run_user_study_inner(config, &FitCache::new(), true)
}

/// [`run_user_study_telemetry`] fitting through a shared [`FitCache`];
/// the fit (or cache recall) leads the stream as a unit-0 block ahead of
/// the per-job detection units.
///
/// # Errors
///
/// Same conditions as [`run_user_study`].
pub fn run_user_study_cache_telemetry(
    config: &UserStudyConfig,
    cache: &FitCache,
) -> Result<(UserStudyResults, TelemetryLog), BoltError> {
    run_user_study_inner(config, cache, true)
}

fn run_user_study_inner(
    config: &UserStudyConfig,
    cache: &FitCache,
    telemetry_enabled: bool,
) -> Result<(UserStudyResults, TelemetryLog), BoltError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut cluster = Cluster::new(
        config.instances,
        ServerSpec::c3_8xlarge(),
        IsolationConfig::cloud_default(),
    )?;

    // A quiet 4-vCPU Bolt VM per instance.
    let mut bolt_vms: Vec<VmId> = Vec::with_capacity(config.instances);
    for s in 0..config.instances {
        let profile = bolt_workloads::catalog::memcached::profile(
            &bolt_workloads::catalog::memcached::Variant::Mixed,
            &mut rng,
        )
        .with_vcpus(4);
        let id = cluster.launch_on(s, profile, VmRole::Adversarial, 0.0)?;
        cluster.set_pressure_override(id, Some(PressureVector::zero()))?;
        bolt_vms.push(id);
    }

    let isolation = cluster.isolation();
    // The study trains on seed-7 profiles observed through the cloud's
    // default channel (see `USER_STUDY_TRAINING_SEED`); the shared fit
    // path memoizes both the catalog walk and the SVD+SGD training.
    let mut fit_telemetry = if telemetry_enabled {
        Telemetry::for_unit(0)
    } else {
        Telemetry::disabled()
    };
    let recommender = crate::experiment::shared_recommender(
        USER_STUDY_TRAINING_SEED,
        &isolation,
        config.recommender,
        cache,
        &mut fit_telemetry,
    )?;
    let detector = Detector::new(recommender, config.detector);

    let horizon_s = 4.0 * 3600.0;
    let mut records = Vec::with_capacity(config.jobs);
    let mut log = TelemetryLog::new();
    log.merge(fit_telemetry);
    let mut pending: Vec<PendingDetection> = Vec::with_capacity(DETECTION_CHUNK);
    // Jobs a user keeps concentrated on "their" instances: each user gets a
    // home instance for manual placements.
    let home: Vec<usize> = (0..config.users)
        .map(|_| rng.gen_range(0..config.instances))
        .collect();

    for j in 0..config.jobs {
        let user = rng.gen_range(0..config.users);
        let app: &UserStudyApp = userstudy::sample_app(&mut rng);
        let profile = userstudy::profile(app, &mut rng);
        let launch_t = horizon_s * j as f64 / config.jobs as f64;

        // Placement: manual (the user's home instance if it fits) or
        // least-loaded.
        let manual = rng.gen::<f64>() < config.manual_placement_rate;
        let server = if manual && cluster.server(home[user])?.can_host(profile.vcpus(), false) {
            home[user]
        } else {
            match cluster.least_loaded_server(profile.vcpus()) {
                Some(s) => s,
                None => continue, // pool momentarily full; job bounced
            }
        };

        let truth_label = profile.label().clone();
        let truth_chars = bolt_workloads::ResourceCharacteristics::from_pressure(
            &crate::experiment::observe_through(profile.base_pressure(), &isolation),
        );
        // Users pin their jobs to cores of their own choosing (§4 rules),
        // so thread placement is random rather than spreading.
        let vm = cluster.launch_pinned(server, profile, VmRole::Friendly, launch_t, &mut rng)?;
        let co_residents = cluster
            .vms_on(server)
            .iter()
            .filter(|&&id| {
                cluster
                    .vm(id)
                    .map(|s| s.role == VmRole::Friendly)
                    .unwrap_or(false)
            })
            .count();

        // Bolt detects shortly after launch — deferred onto a frozen
        // snapshot so batches fan out between placements.
        pending.push(PendingDetection {
            job: j,
            user,
            app_id: app.id,
            family: app.family.to_string(),
            in_training: app.in_training,
            instance: server,
            co_residents,
            truth_label,
            truth_characteristics: truth_chars,
            bolt_vm: bolt_vms[server],
            detect_t: launch_t + 5.0,
            snapshot: cluster.snapshot(),
        });
        if pending.len() >= DETECTION_CHUNK {
            flush_detections(
                &detector,
                config,
                telemetry_enabled,
                &mut pending,
                &mut records,
                &mut log,
            )?;
        }

        // Jobs complete over time: once the pool holds more friendly VMs
        // than half the instance count, retire a random older one (not the
        // job just launched) to model departures.
        if j % 2 == 1 {
            let friendly: Vec<VmId> = cluster
                .vm_ids()
                .filter(|&id| {
                    id != vm
                        && cluster
                            .vm(id)
                            .map(|s| s.role == VmRole::Friendly)
                            .unwrap_or(false)
                })
                .collect();
            if friendly.len() > config.instances / 2 {
                let pick = friendly[rng.gen_range(0..friendly.len())];
                let _ = cluster.terminate(pick);
            }
        }
    }
    flush_detections(
        &detector,
        config,
        telemetry_enabled,
        &mut pending,
        &mut records,
        &mut log,
    )?;

    // The pool mutates throughout the run, so its launch/terminate stream
    // drains once, as a trailing unit-0 block.
    if telemetry_enabled {
        let mut unit0 = Telemetry::for_unit(0);
        unit0.cluster_events(cluster.take_events());
        log.merge(unit0);
    }

    let instances_used = {
        let mut used = vec![false; config.instances];
        for r in &records {
            used[r.instance] = true;
        }
        used.iter().filter(|&&u| u).count()
    };

    Ok((
        UserStudyResults {
            records,
            instances_used,
        },
        log,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> UserStudyConfig {
        UserStudyConfig {
            instances: 12,
            users: 5,
            jobs: 40,
            ..UserStudyConfig::default()
        }
    }

    #[test]
    fn study_processes_requested_jobs() {
        let results = run_user_study(&small()).unwrap();
        assert!(results.records.len() >= 35, "most jobs should place");
        assert!(results.instances_used <= 12);
    }

    #[test]
    fn characterized_outnumbers_named() {
        // The paper's headline gap: 385 characterized vs 277 named.
        let results = run_user_study(&small()).unwrap();
        assert!(
            results.characterized() >= results.named(),
            "characterized {} < named {}",
            results.characterized(),
            results.named()
        );
        // And a decent majority is characterized at this light load.
        assert!(
            results.characterized() as f64 >= 0.5 * results.records.len() as f64,
            "characterized {}/{}",
            results.characterized(),
            results.records.len()
        );
    }

    #[test]
    fn never_trained_families_are_never_named() {
        let results = run_user_study(&small()).unwrap();
        for r in &results.records {
            if !r.in_training {
                assert!(!r.name_correct, "{} cannot be named", r.family);
            }
        }
    }

    #[test]
    fn per_label_counts_sum_to_records() {
        let results = run_user_study(&small()).unwrap();
        let total: usize = results.per_label().iter().map(|&(_, n, _, _)| n).sum();
        assert_eq!(total, results.records.len());
        let jobs: usize = results.jobs_per_instance(12).iter().sum();
        assert_eq!(jobs, results.records.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_user_study(&small()).unwrap();
        let b = run_user_study(&small()).unwrap();
        assert_eq!(a.named(), b.named());
        assert_eq!(a.characterized(), b.characterized());
    }
}
