//! Sensitivity studies: the design-decision sweeps of paper Fig. 10.
//!
//! * **Profiling interval** (Fig. 10a): detection results go stale as
//!   victims change jobs; beyond ~30 s intervals accuracy drops rapidly,
//!   and at 5-minute intervals almost half the victims are misidentified.
//! * **Adversarial VM size** (Fig. 10b): below 4 vCPUs the adversary
//!   cannot generate enough contention to measure co-resident pressure;
//!   larger VMs also share cores more often, so accuracy keeps growing.
//! * **Number of benchmarks** (Fig. 10c): one benchmark cannot fingerprint
//!   a workload; beyond 3 the returns diminish.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use bolt_probes::ProfilerConfig;
use bolt_recommender::FitCache;
use bolt_sim::vm::VmRole;
use bolt_sim::{Cluster, LeastLoaded, ServerSpec, VmId};
use bolt_workloads::{AppLabel, PressureVector, WorkloadProfile};

use crate::detector::{Detector, DetectorConfig};
use crate::experiment::{
    run_experiment_cache, run_experiment_cache_telemetry, shared_recommender, victim_set,
    ExperimentConfig,
};
use crate::parallel::{sweep, Parallelism};
use crate::telemetry::{Telemetry, TelemetryLog};
use crate::BoltError;

/// One sweep point: the swept parameter value and the measured accuracy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The swept parameter's value.
    pub parameter: f64,
    /// Label-detection accuracy at that value.
    pub accuracy: f64,
}

/// Fig. 10b: accuracy as a function of the adversarial VM's vCPU count.
///
/// Sweep points run serially through [`sweep`]; each point's inner
/// experiment already fans its victims out over `base.parallelism`, which
/// scales better than parallelizing the handful of points.
///
/// # Errors
///
/// Propagates [`BoltError`] from the underlying experiments.
pub fn adversary_size_sweep(
    base: &ExperimentConfig,
    sizes: &[u32],
) -> Result<Vec<SweepPoint>, BoltError> {
    adversary_size_sweep_cache(base, sizes, &FitCache::new())
}

/// [`adversary_size_sweep`] fitting through a shared [`FitCache`]: the
/// adversary's size does not touch the training inputs, so every point
/// past the first reuses point 0's trained recommender. Byte-identical
/// to the uncached sweep; pass [`FitCache::disabled`] to re-train per
/// point.
///
/// # Errors
///
/// Same conditions as [`adversary_size_sweep`].
pub fn adversary_size_sweep_cache(
    base: &ExperimentConfig,
    sizes: &[u32],
    cache: &FitCache,
) -> Result<Vec<SweepPoint>, BoltError> {
    sweep(sizes, Parallelism::Serial, |_, &vcpus| {
        let config = ExperimentConfig {
            adversary_vcpus: vcpus,
            ..*base
        };
        run_experiment_cache(&config, &LeastLoaded, cache).map(|results| SweepPoint {
            parameter: vcpus as f64,
            accuracy: results.label_accuracy(),
        })
    })
    .into_iter()
    .collect()
}

/// [`adversary_size_sweep`] returning the concatenated telemetry of
/// every point alongside the rows, in size order.
///
/// # Errors
///
/// Same conditions as [`adversary_size_sweep`].
pub fn adversary_size_sweep_telemetry(
    base: &ExperimentConfig,
    sizes: &[u32],
) -> Result<(Vec<SweepPoint>, TelemetryLog), BoltError> {
    adversary_size_sweep_cache_telemetry(base, sizes, &FitCache::new())
}

/// [`adversary_size_sweep_telemetry`] fitting through a shared
/// [`FitCache`]; with a warm cache every point's unit-0 stream carries a
/// fit-cache-hit counter instead of a recommender-fit span.
///
/// # Errors
///
/// Same conditions as [`adversary_size_sweep`].
pub fn adversary_size_sweep_cache_telemetry(
    base: &ExperimentConfig,
    sizes: &[u32],
    cache: &FitCache,
) -> Result<(Vec<SweepPoint>, TelemetryLog), BoltError> {
    let mut points = Vec::with_capacity(sizes.len());
    let mut log = TelemetryLog::new();
    for &vcpus in sizes {
        let config = ExperimentConfig {
            adversary_vcpus: vcpus,
            ..*base
        };
        let (results, point_log) = run_experiment_cache_telemetry(&config, &LeastLoaded, cache)?;
        points.push(SweepPoint {
            parameter: vcpus as f64,
            accuracy: results.label_accuracy(),
        });
        log.extend(point_log.into_events());
    }
    Ok((points, log))
}

/// Fig. 10c: accuracy as a function of the number of profiling
/// benchmarks in the initial snapshot.
///
/// Like [`adversary_size_sweep`], points run serially and the inner
/// experiments carry the parallelism.
///
/// # Errors
///
/// Propagates [`BoltError`] from the underlying experiments.
pub fn benchmark_count_sweep(
    base: &ExperimentConfig,
    counts: &[usize],
) -> Result<Vec<SweepPoint>, BoltError> {
    benchmark_count_sweep_cache(base, counts, &FitCache::new())
}

/// [`benchmark_count_sweep`] fitting through a shared [`FitCache`] —
/// the benchmark count only changes the profiler, never the training
/// inputs, so one fit serves the whole sweep.
///
/// # Errors
///
/// Same conditions as [`benchmark_count_sweep`].
pub fn benchmark_count_sweep_cache(
    base: &ExperimentConfig,
    counts: &[usize],
    cache: &FitCache,
) -> Result<Vec<SweepPoint>, BoltError> {
    sweep(counts, Parallelism::Serial, |_, &n| {
        let config = ExperimentConfig {
            detector: DetectorConfig {
                profiler: ProfilerConfig {
                    initial_benchmarks: n,
                    ..base.detector.profiler
                },
                ..base.detector
            },
            ..*base
        };
        run_experiment_cache(&config, &LeastLoaded, cache).map(|results| SweepPoint {
            parameter: n as f64,
            accuracy: results.label_accuracy(),
        })
    })
    .into_iter()
    .collect()
}

/// [`benchmark_count_sweep`] returning the concatenated telemetry of
/// every point alongside the rows, in count order.
///
/// # Errors
///
/// Same conditions as [`benchmark_count_sweep`].
pub fn benchmark_count_sweep_telemetry(
    base: &ExperimentConfig,
    counts: &[usize],
) -> Result<(Vec<SweepPoint>, TelemetryLog), BoltError> {
    benchmark_count_sweep_cache_telemetry(base, counts, &FitCache::new())
}

/// [`benchmark_count_sweep_telemetry`] fitting through a shared
/// [`FitCache`].
///
/// # Errors
///
/// Same conditions as [`benchmark_count_sweep`].
pub fn benchmark_count_sweep_cache_telemetry(
    base: &ExperimentConfig,
    counts: &[usize],
    cache: &FitCache,
) -> Result<(Vec<SweepPoint>, TelemetryLog), BoltError> {
    let mut points = Vec::with_capacity(counts.len());
    let mut log = TelemetryLog::new();
    for &n in counts {
        let config = ExperimentConfig {
            detector: DetectorConfig {
                profiler: ProfilerConfig {
                    initial_benchmarks: n,
                    ..base.detector.profiler
                },
                ..base.detector
            },
            ..*base
        };
        let (results, point_log) = run_experiment_cache_telemetry(&config, &LeastLoaded, cache)?;
        points.push(SweepPoint {
            parameter: n as f64,
            accuracy: results.label_accuracy(),
        });
        log.extend(point_log.into_events());
    }
    Ok((points, log))
}

/// A victim VM cycling through consecutive jobs, for the staleness study
/// (and the Fig. 8 phase timeline).
pub struct PhasedVictim {
    /// The VM id.
    pub vm: VmId,
    /// The job schedule: `(start_time_s, label)` in increasing time order.
    pub schedule: Vec<(f64, AppLabel)>,
    /// The job profiles, index-aligned with `schedule`.
    pub profiles: Vec<WorkloadProfile>,
}

impl PhasedVictim {
    /// The label active at time `t` (the last schedule entry at or before
    /// `t`).
    pub fn active_label(&self, t: f64) -> &AppLabel {
        let mut current = &self.schedule[0].1;
        for (start, label) in &self.schedule {
            if *start <= t {
                current = label;
            } else {
                break;
            }
        }
        current
    }

    /// Index of the job active at time `t`.
    fn active_index(&self, t: f64) -> usize {
        let mut idx = 0;
        for (i, (start, _)) in self.schedule.iter().enumerate() {
            if *start <= t {
                idx = i;
            } else {
                break;
            }
        }
        idx
    }
}

/// Fig. 10a: accuracy as a function of the profiling interval, against a
/// victim that switches jobs every `job_duration_s` seconds on average.
///
/// At each multiple of the interval, the adversary re-detects; between
/// detections its belief is the last label seen. Accuracy is the fraction
/// of audit instants (1 Hz) at which that belief matches the job actually
/// running — exactly how stale detections lose value in the paper.
///
/// Each interval builds its own single-server scene with an RNG derived
/// from `seed` and the interval value, so intervals are independent and
/// fan out over `parallelism` with results identical to a serial run.
///
/// # Errors
///
/// Propagates [`BoltError`] from the simulator or detector.
pub fn profiling_interval_sweep(
    intervals_s: &[f64],
    job_duration_s: f64,
    horizon_s: f64,
    seed: u64,
    parallelism: Parallelism,
) -> Result<Vec<SweepPoint>, BoltError> {
    profiling_interval_sweep_cache(
        intervals_s,
        job_duration_s,
        horizon_s,
        seed,
        parallelism,
        &FitCache::new(),
    )
}

/// [`profiling_interval_sweep`] fitting through a shared [`FitCache`].
/// Every interval shares one training configuration, so the sweep
/// pre-warms the cache on the calling thread before fanning intervals
/// out over `parallelism` — each worker then hits deterministically,
/// keeping results *and* telemetry identical for every thread count.
///
/// # Errors
///
/// Same conditions as [`profiling_interval_sweep`].
pub fn profiling_interval_sweep_cache(
    intervals_s: &[f64],
    job_duration_s: f64,
    horizon_s: f64,
    seed: u64,
    parallelism: Parallelism,
    cache: &FitCache,
) -> Result<Vec<SweepPoint>, BoltError> {
    let base = ExperimentConfig::default();
    if cache.is_enabled() {
        prewarm(&base, cache, &mut Telemetry::disabled())?;
    }
    sweep(intervals_s, parallelism, |_, &interval| {
        let mut telemetry = Telemetry::disabled();
        interval_point(
            &base,
            interval,
            job_duration_s,
            horizon_s,
            seed,
            cache,
            &mut telemetry,
        )
    })
    .into_iter()
    .collect()
}

/// [`profiling_interval_sweep`] recording per-interval telemetry: the
/// detection-pipeline spans and probe counts of every re-detection, plus
/// the victim's job-swap trace events. Each interval records under its
/// own unit id, and the returned log concatenates the per-interval
/// streams in interval order, so the log is identical for any
/// `parallelism`.
///
/// # Errors
///
/// Same conditions as [`profiling_interval_sweep`].
pub fn profiling_interval_sweep_telemetry(
    intervals_s: &[f64],
    job_duration_s: f64,
    horizon_s: f64,
    seed: u64,
    parallelism: Parallelism,
) -> Result<(Vec<SweepPoint>, TelemetryLog), BoltError> {
    profiling_interval_sweep_cache_telemetry(
        intervals_s,
        job_duration_s,
        horizon_s,
        seed,
        parallelism,
        &FitCache::new(),
    )
}

/// [`profiling_interval_sweep_telemetry`] fitting through a shared
/// [`FitCache`]. The pre-warm fit records (as unit 0) ahead of the
/// per-interval streams; with a warm cache each interval then records a
/// fit-cache-hit counter and no fit span, identically for every
/// `parallelism`.
///
/// # Errors
///
/// Same conditions as [`profiling_interval_sweep`].
pub fn profiling_interval_sweep_cache_telemetry(
    intervals_s: &[f64],
    job_duration_s: f64,
    horizon_s: f64,
    seed: u64,
    parallelism: Parallelism,
    cache: &FitCache,
) -> Result<(Vec<SweepPoint>, TelemetryLog), BoltError> {
    let base = ExperimentConfig::default();
    let mut prelude = Telemetry::for_unit(0);
    if cache.is_enabled() {
        prewarm(&base, cache, &mut prelude)?;
    }
    let per_point: Result<Vec<_>, BoltError> =
        sweep(intervals_s, parallelism, |unit, &interval| {
            let mut telemetry = Telemetry::for_unit(unit);
            let point = interval_point(
                &base,
                interval,
                job_duration_s,
                horizon_s,
                seed,
                cache,
                &mut telemetry,
            )?;
            Ok((point, telemetry.into_events()))
        })
        .into_iter()
        .collect();
    let mut points = Vec::with_capacity(intervals_s.len());
    let mut log = TelemetryLog::new();
    log.merge(prelude);
    for (point, events) in per_point? {
        points.push(point);
        log.extend(events);
    }
    Ok((points, log))
}

/// Trains (or recalls) the recommender for `base`'s training inputs on
/// the calling thread, so a subsequent parallel fan-out over the same
/// inputs hits deterministically.
fn prewarm(
    base: &ExperimentConfig,
    cache: &FitCache,
    telemetry: &mut Telemetry,
) -> Result<(), BoltError> {
    shared_recommender(
        base.training_seed,
        &base.isolation,
        base.recommender,
        cache,
        telemetry,
    )
    .map(|_| ())
}

/// One interval of the staleness study: build the phased scene, audit at
/// 1 Hz, re-detect at every interval multiple. Both sweep entry points
/// funnel through here; the plain one passes [`Telemetry::disabled`], so
/// the recorded and unrecorded paths cannot drift apart.
#[allow(clippy::too_many_arguments)]
fn interval_point(
    base: &ExperimentConfig,
    interval: f64,
    job_duration_s: f64,
    horizon_s: f64,
    seed: u64,
    cache: &FitCache,
    telemetry: &mut Telemetry,
) -> Result<SweepPoint, BoltError> {
    let mut rng = StdRng::seed_from_u64(seed ^ (interval as u64).wrapping_mul(0x9E37));
    let (mut cluster, detector, adversary, victim) =
        phased_scene(base, job_duration_s, horizon_s, cache, telemetry, &mut rng)?;
    telemetry.cluster_events(cluster.take_events());

    let mut correct = 0usize;
    let mut audited = 0usize;
    let mut belief: Option<AppLabel> = None;
    let mut next_detection = 0.0;
    let mut t = 0.0;
    while t < horizon_s {
        if t >= next_detection {
            // Bring the victim VM's workload up to date (it may have
            // switched jobs since the previous detection), then detect.
            let idx = victim.active_index(t);
            cluster.swap_profile(victim.vm, victim.profiles[idx].clone())?;
            telemetry.cluster_events(cluster.take_events());
            let d = detector.detect_telemetry(&cluster, adversary, t, &mut rng, telemetry)?;
            belief = d.labels().next().cloned().or(belief);
            next_detection = t + interval;
        }
        let truth = victim.active_label(t);
        if let Some(b) = &belief {
            if b.matches(truth) {
                correct += 1;
            }
        }
        audited += 1;
        t += 1.0;
    }
    Ok(SweepPoint {
        parameter: interval,
        accuracy: correct as f64 / audited.max(1) as f64,
    })
}

/// Builds the phased-victim scene: one server, a quiet adversary, one
/// victim VM whose job changes over time.
fn phased_scene(
    base: &ExperimentConfig,
    job_duration_s: f64,
    horizon_s: f64,
    cache: &FitCache,
    telemetry: &mut Telemetry,
    rng: &mut StdRng,
) -> Result<(Cluster, Detector, VmId, PhasedVictim), BoltError> {
    let mut cluster = Cluster::new(1, ServerSpec::xeon(), base.isolation)?;
    let adv_profile = bolt_workloads::catalog::memcached::profile(
        &bolt_workloads::catalog::memcached::Variant::Mixed,
        rng,
    )
    .with_vcpus(base.adversary_vcpus);
    let adversary = cluster.launch_on(0, adv_profile, VmRole::Adversarial, 0.0)?;
    cluster.set_pressure_override(adversary, Some(PressureVector::zero()))?;

    // Draw the job sequence: diverse jobs, exponential-ish durations.
    let pool = victim_set(12, rng);
    let mut schedule = Vec::new();
    let mut profiles = Vec::new();
    let mut t = 0.0;
    while t < horizon_s {
        let job = pool[rng.gen_range(0..pool.len())].clone().with_vcpus(8);
        schedule.push((t, job.label().clone()));
        profiles.push(job);
        // Exponential holding time around the mean job duration.
        let u: f64 = rng.gen::<f64>().max(1e-9);
        t += -job_duration_s * u.ln();
    }
    let vm = cluster.launch_on(0, profiles[0].clone(), VmRole::Friendly, 0.0)?;

    let recommender = shared_recommender(
        base.training_seed,
        &base.isolation,
        base.recommender,
        cache,
        telemetry,
    )?;
    let detector = Detector::new(recommender, base.detector);

    Ok((
        cluster,
        detector,
        adversary,
        PhasedVictim {
            vm,
            schedule,
            profiles,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ExperimentConfig {
        ExperimentConfig {
            servers: 6,
            victims: 12,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn adversary_size_matters_below_four_vcpus() {
        let points = adversary_size_sweep(&small(), &[1, 4]).unwrap();
        assert_eq!(points.len(), 2);
        assert!(
            points[0].accuracy < points[1].accuracy,
            "1-vCPU adversary {p0} should underperform 4-vCPU {p1}",
            p0 = points[0].accuracy,
            p1 = points[1].accuracy
        );
    }

    #[test]
    fn single_benchmark_is_insufficient() {
        let points = benchmark_count_sweep(&small(), &[1, 3]).unwrap();
        assert!(
            points[0].accuracy < points[1].accuracy + 1e-9,
            "1 benchmark {p0} should not beat 3 benchmarks {p1}",
            p0 = points[0].accuracy,
            p1 = points[1].accuracy
        );
    }

    #[test]
    fn stale_detections_lose_accuracy() {
        let points =
            profiling_interval_sweep(&[20.0, 300.0], 60.0, 600.0, 0xF16A, Parallelism::Auto)
                .unwrap();
        assert!(
            points[0].accuracy > points[1].accuracy + 0.1,
            "20 s interval {p0} should clearly beat 300 s {p1}",
            p0 = points[0].accuracy,
            p1 = points[1].accuracy
        );
    }

    #[test]
    fn experiment_sweep_telemetry_matches_the_plain_sweeps() {
        let base = ExperimentConfig {
            servers: 4,
            victims: 6,
            ..ExperimentConfig::default()
        };
        let plain = adversary_size_sweep(&base, &[2]).unwrap();
        let (recorded, log) = adversary_size_sweep_telemetry(&base, &[2]).unwrap();
        assert_eq!(plain, recorded);
        assert!(log.counter_total(crate::telemetry::Counter::ProbeSamples) > 0);

        let plain = benchmark_count_sweep(&base, &[2]).unwrap();
        let (recorded, log) = benchmark_count_sweep_telemetry(&base, &[2]).unwrap();
        assert_eq!(plain, recorded);
        assert!(!log.is_empty());
    }

    #[test]
    fn interval_sweep_telemetry_matches_and_records_swaps() {
        let plain =
            profiling_interval_sweep(&[60.0], 60.0, 240.0, 0xF16A, Parallelism::Serial).unwrap();
        let (recorded, log) =
            profiling_interval_sweep_telemetry(&[60.0], 60.0, 240.0, 0xF16A, Parallelism::Auto)
                .unwrap();
        assert_eq!(plain, recorded);
        assert!(log.counter_total(crate::telemetry::Counter::ProbeSamples) > 0);
        // The victim's job swaps land in the log as cluster trace events.
        assert!(log.to_jsonl().contains("\"kind\":\"swap-profile\""));
    }

    #[test]
    fn phased_victim_schedule_lookup() {
        let mut rng = StdRng::seed_from_u64(1);
        let base = ExperimentConfig::default();
        let (_, _, _, victim) = phased_scene(
            &base,
            60.0,
            300.0,
            &FitCache::new(),
            &mut Telemetry::disabled(),
            &mut rng,
        )
        .unwrap();
        assert!(!victim.schedule.is_empty());
        let first = victim.schedule[0].1.clone();
        assert!(victim.active_label(0.0).matches(&first));
    }
}
