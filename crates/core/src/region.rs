//! Region-scale cluster driver: churn plus interference probing at
//! thousands of servers.
//!
//! The paper's controlled experiments run on tens of servers; a region of
//! a public cloud is 10k+ hosts with 100k+ tenants. This module stresses
//! the simulator at that scale and reports where the time goes. Two
//! storage-layer properties make the scale tractable (see
//! `DESIGN.md` § "Region-scale storage"):
//!
//! * the per-server residency index makes one interference probe cost
//!   O(co-residents on that host), independent of region size, and
//! * the deterministic aggregate cache memoizes repeated neighbor
//!   queries at the same simulated time, so steady-state sampling does
//!   not re-walk unchanged hosts.
//!
//! Tenants here are launched with [`WorkloadProfile::with_noise`] zeroed:
//! zero-noise profiles draw no per-query randomness, which is exactly the
//! regime where the aggregate cache may engage without perturbing any RNG
//! stream. Clusters with stochastic tenants simply fall back to the
//! uncached scan on the affected servers.
//!
//! [`WorkloadProfile::with_noise`]: bolt_workloads::WorkloadProfile::with_noise

use std::time::Instant;

use bolt_sim::vm::VmRole;
use bolt_sim::{Cluster, IsolationConfig, ServerSpec, StorageStats, VmId};
use bolt_workloads::{catalog, DatasetScale, WorkloadProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::BoltError;
use crate::report::Table;
use crate::telemetry::{Counter, Telemetry};

/// Parameters for a region-scale run.
#[derive(Debug, Clone)]
pub struct RegionConfig {
    /// Hosts in the region.
    pub servers: usize,
    /// Tenants to land on each host (capacity permitting).
    pub vms_per_server: usize,
    /// Simulation steps to advance.
    pub steps: usize,
    /// Interference probes sampled per step.
    pub probes_per_step: usize,
    /// VMs terminated (and replaced) per step — region churn.
    pub churn_per_step: usize,
    /// RNG seed for tenant profiles and churn picks.
    pub seed: u64,
}

impl Default for RegionConfig {
    fn default() -> Self {
        RegionConfig {
            servers: 1000,
            vms_per_server: 10,
            steps: 20,
            probes_per_step: 256,
            churn_per_step: 32,
            seed: 0xB017,
        }
    }
}

/// What a region-scale run measured.
#[derive(Debug, Clone)]
pub struct RegionReport {
    /// Hosts simulated.
    pub servers: usize,
    /// Tenants placed at build time.
    pub vms: usize,
    /// Steps advanced.
    pub steps: usize,
    /// Interference probes issued across all steps.
    pub probes: u64,
    /// Wall-clock seconds spent building and populating the region.
    pub build_s: f64,
    /// Wall-clock seconds spent stepping (probes + churn).
    pub step_s: f64,
    /// Mean wall-clock nanoseconds per interference probe.
    pub ns_per_probe: f64,
    /// Mean neighbor candidates visited per probe (locality metric).
    pub visits_per_probe: f64,
    /// Storage-layer counters at the end of the run.
    pub storage: StorageStats,
}

impl RegionReport {
    /// The report as a two-column table for the CLI.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec!["metric", "value"]);
        t.row(vec!["servers".into(), self.servers.to_string()]);
        t.row(vec!["vms".into(), self.vms.to_string()]);
        t.row(vec!["steps".into(), self.steps.to_string()]);
        t.row(vec!["probes".into(), self.probes.to_string()]);
        t.row(vec!["build (s)".into(), format!("{:.3}", self.build_s)]);
        t.row(vec!["stepping (s)".into(), format!("{:.3}", self.step_s)]);
        t.row(vec![
            "ns / probe".into(),
            format!("{:.0}", self.ns_per_probe),
        ]);
        t.row(vec![
            "visits / probe".into(),
            format!("{:.2}", self.visits_per_probe),
        ]);
        t.row(vec![
            "arena slots (live/free)".into(),
            format!("{}/{}", self.storage.live_vms, self.storage.free_slots),
        ]);
        t.row(vec![
            "slots reused".into(),
            self.storage.slots_reused.to_string(),
        ]);
        t.row(vec![
            "residency ops".into(),
            self.storage.residency_ops.to_string(),
        ]);
        t.row(vec![
            "agg cache hit/miss".into(),
            format!("{}/{}", self.storage.agg_hits, self.storage.agg_misses),
        ]);
        t
    }
}

/// One measured point of the servers-versus-probe-cost scaling curve.
#[derive(Debug, Clone, Copy)]
pub struct ScalePoint {
    /// Hosts in the region at this point.
    pub servers: usize,
    /// Tenants placed.
    pub vms: usize,
    /// First-touch (cache-miss) interference probes measured.
    pub probes: u64,
    /// Mean wall-clock nanoseconds per probe.
    pub ns_per_probe: f64,
    /// Mean neighbor candidates visited per probe.
    pub visits_per_probe: f64,
}

/// A deterministic small-tenant profile for slot `i`.
///
/// Rotates through four catalog families, squeezes each onto one vCPU
/// (region tenants are small — the 100k-on-10k density target needs ten
/// per 16-thread host), and strips the stochastic noise term so the
/// deterministic aggregate path stays engaged; the profiles otherwise
/// keep their catalog pressure shapes.
pub(crate) fn tenant_profile<R: Rng>(i: usize, rng: &mut R) -> WorkloadProfile {
    let p = match i % 4 {
        0 => catalog::memcached::profile(&catalog::memcached::Variant::Mixed, rng),
        1 => catalog::speccpu::profile(&catalog::speccpu::Benchmark::Gobmk, rng),
        2 => catalog::spark::profile(&catalog::spark::Algorithm::KMeans, DatasetScale::Small, rng),
        _ => catalog::memcached::profile(&catalog::memcached::Variant::ReadHeavyKb, rng),
    };
    p.with_noise(0.0).with_vcpus(1)
}

/// Builds a populated region: `servers` hosts, up to `vms_per_server`
/// zero-noise tenants each.
fn build_region(config: &RegionConfig, rng: &mut StdRng) -> Result<Cluster, BoltError> {
    let mut cluster = Cluster::new(
        config.servers,
        ServerSpec::xeon(),
        IsolationConfig::cloud_default(),
    )?;
    let core_iso = cluster.isolation().mechanisms.core_isolation;
    for server in 0..config.servers {
        for k in 0..config.vms_per_server {
            let profile = tenant_profile(server + k, rng);
            if !cluster.server(server)?.can_host(profile.vcpus(), core_iso) {
                break;
            }
            cluster.launch_on(server, profile, VmRole::Friendly, 0.0)?;
        }
    }
    Ok(cluster)
}

/// Runs the region scenario without telemetry.
pub fn run_region(config: &RegionConfig) -> Result<RegionReport, BoltError> {
    run_region_telemetry(config, &mut Telemetry::disabled())
}

/// Runs the region scenario: build, then per step probe a deterministic
/// sample of tenants and churn a few (terminate + replace).
///
/// Records the storage-layer [`Counter`]s on `telemetry` so a `--telemetry`
/// trace shows arena occupancy, slot reuse, residency-index traffic, and
/// aggregate-cache effectiveness alongside the usual phases.
pub fn run_region_telemetry(
    config: &RegionConfig,
    telemetry: &mut Telemetry,
) -> Result<RegionReport, BoltError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let build_start = Instant::now();
    let mut cluster = build_region(config, &mut rng)?;
    let build_s = build_start.elapsed().as_secs_f64();
    let vms = cluster.vm_ids().count();

    let mut probes = 0u64;
    let step_start = Instant::now();
    for step in 0..config.steps {
        let t = step as f64 * 10.0;
        // Probe a deterministic stride of live tenants. Repeat visits at
        // the same `t` are aggregate-cache hits by design.
        let live: Vec<VmId> = cluster.vm_ids().collect();
        if !live.is_empty() {
            let stride = (live.len() / config.probes_per_step.max(1)).max(1);
            for id in live.iter().step_by(stride).take(config.probes_per_step) {
                let _ = cluster.interference_on(*id, t, &mut rng)?;
                probes += 1;
            }
        }
        // Churn: terminate a spread of tenants, land replacements via the
        // least-loaded rule. Exercises slot reuse and cache invalidation.
        for c in 0..config.churn_per_step.min(live.len()) {
            let victim = live[(c * 7919) % live.len()];
            if cluster.vm(victim).is_ok() {
                cluster.terminate(victim)?;
            }
            let profile = tenant_profile(step + c, &mut rng);
            if let Some(target) = cluster.least_loaded_server(profile.vcpus()) {
                cluster.launch_on(target, profile, VmRole::Friendly, t)?;
            }
        }
    }
    let step_s = step_start.elapsed().as_secs_f64();

    let storage = cluster.storage_stats();
    telemetry.count(Counter::ArenaVmsLive, storage.live_vms as u64);
    telemetry.count(Counter::ArenaSlotsReused, storage.slots_reused);
    telemetry.count(Counter::ResidencyIndexOps, storage.residency_ops);
    telemetry.count(Counter::AggregateCacheHit, storage.agg_hits);
    telemetry.count(Counter::AggregateCacheMiss, storage.agg_misses);
    telemetry.count(Counter::NeighborVisits, storage.neighbor_visits);

    Ok(RegionReport {
        servers: config.servers,
        vms,
        steps: config.steps,
        probes,
        build_s,
        step_s,
        ns_per_probe: if probes == 0 {
            0.0
        } else {
            step_s * 1e9 / probes as f64
        },
        visits_per_probe: if probes == 0 {
            0.0
        } else {
            storage.neighbor_visits as f64 / probes as f64
        },
        storage,
    })
}

/// Measures first-touch probe cost at each region size.
///
/// Every probe pairs a distinct `(tenant, t)` so it misses the aggregate
/// cache and pays the full neighbor walk — the honest per-query cost.
/// With the residency index both columns should stay flat as `servers`
/// grows; under the old full-arena scan they grew linearly.
pub fn scaling_curve(
    sizes: &[usize],
    vms_per_server: usize,
    seed: u64,
) -> Result<Vec<ScalePoint>, BoltError> {
    let mut points = Vec::with_capacity(sizes.len());
    for &servers in sizes {
        let config = RegionConfig {
            servers,
            vms_per_server,
            ..RegionConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let cluster = build_region(&config, &mut rng)?;
        let vms = cluster.vm_ids().count();
        let targets: Vec<VmId> = cluster.vms_on(0).to_vec();
        let before = cluster.storage_stats();

        let rounds = 64usize;
        let start = Instant::now();
        let mut probes = 0u64;
        for round in 0..rounds {
            // A fresh t per round keeps every (tenant, t) pair unseen.
            let t = 1.0 + round as f64 * 0.125;
            for &id in &targets {
                let _ = cluster.interference_on(id, t, &mut rng)?;
                probes += 1;
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        let after = cluster.storage_stats();
        points.push(ScalePoint {
            servers,
            vms,
            probes,
            ns_per_probe: if probes == 0 {
                0.0
            } else {
                elapsed * 1e9 / probes as f64
            },
            visits_per_probe: if probes == 0 {
                0.0
            } else {
                (after.neighbor_visits - before.neighbor_visits) as f64 / probes as f64
            },
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_region_runs_and_reports() {
        let config = RegionConfig {
            servers: 8,
            vms_per_server: 4,
            steps: 3,
            probes_per_step: 8,
            churn_per_step: 2,
            seed: 7,
        };
        let report = run_region(&config).expect("region runs");
        assert_eq!(report.servers, 8);
        assert!(report.vms >= 8, "tenants landed");
        assert!(report.probes > 0);
        // Churn recycled at least one arena slot and touched the index.
        assert!(report.storage.slots_reused > 0);
        assert!(report.storage.residency_ops > 0);
        // Deterministic tenants mean the aggregate cache engaged.
        assert!(report.storage.agg_hits + report.storage.agg_misses > 0);
    }

    #[test]
    fn region_probes_record_storage_counters() {
        let config = RegionConfig {
            servers: 4,
            vms_per_server: 2,
            steps: 2,
            probes_per_step: 4,
            churn_per_step: 1,
            seed: 11,
        };
        let mut telemetry = Telemetry::for_unit(0);
        let report = run_region_telemetry(&config, &mut telemetry).expect("region runs");
        let log = crate::telemetry::TelemetryLog::from_events(telemetry.into_events());
        assert_eq!(
            log.counter_total(Counter::ArenaVmsLive),
            report.storage.live_vms as u64
        );
        assert_eq!(
            log.counter_total(Counter::NeighborVisits),
            report.storage.neighbor_visits
        );
    }

    #[test]
    fn probe_visits_track_coresidents_not_region_size() {
        // The locality claim at test scale: quadrupling the region leaves
        // visits-per-probe unchanged.
        let points = scaling_curve(&[4, 16], 4, 3).expect("curve runs");
        assert_eq!(points.len(), 2);
        assert!(points[0].probes > 0 && points[1].probes > 0);
        assert_eq!(
            points[0].visits_per_probe, points[1].visits_per_probe,
            "visits per probe must not grow with servers"
        );
    }

    #[test]
    fn region_run_is_deterministic() {
        let config = RegionConfig {
            servers: 6,
            vms_per_server: 3,
            steps: 2,
            probes_per_step: 6,
            churn_per_step: 2,
            seed: 21,
        };
        let a = run_region(&config).expect("first run");
        let b = run_region(&config).expect("second run");
        assert_eq!(a.vms, b.vms);
        assert_eq!(a.probes, b.probes);
        assert_eq!(a.storage.slots_reused, b.storage.slots_reused);
        assert_eq!(a.storage.residency_ops, b.storage.residency_ops);
        assert_eq!(a.storage.neighbor_visits, b.storage.neighbor_visits);
    }
}
