//! Chaos-off invariance: with [`ChaosConfig::none`] the chaos engine must
//! be *byte-invisible* — the churn-aware entry points produce bit-identical
//! detections and telemetry to the legacy fixed-cluster paths, and the
//! experiment engine emits no fault counters and no chaos trace events.

use bolt::detector::{Detector, DetectorConfig, RetryPolicy};
use bolt::experiment::{
    build_testbed, observed_training, run_experiment_telemetry, ExperimentConfig,
};
use bolt::telemetry::{Counter, Telemetry};
use bolt::Parallelism;
use bolt_recommender::{HybridRecommender, TrainingData};
use bolt_sim::{ChaosConfig, FaultPlan, LeastLoaded};
use bolt_workloads::training::training_set;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_config(seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        servers: 6,
        victims: 10,
        seed,
        ..ExperimentConfig::default()
    }
}

fn fitted_detector(config: &ExperimentConfig) -> Detector {
    let examples = observed_training(&training_set(config.training_seed), &config.isolation);
    let data = TrainingData::from_examples(examples).unwrap();
    let rec = HybridRecommender::fit(data, config.recommender).unwrap();
    Detector::new(rec, DetectorConfig::default())
}

#[test]
fn none_plan_detection_is_bit_identical_to_the_legacy_path() {
    let config = small_config(0xA5FA11);
    let testbed = build_testbed(&config, &LeastLoaded).unwrap();
    let detector = fitted_detector(&config);
    let adversary = testbed.adversaries[0];

    // Legacy fixed-cluster path.
    let mut rng1 = StdRng::seed_from_u64(77);
    let mut t1 = Telemetry::for_unit(1);
    let legacy = detector
        .detect_telemetry(&testbed.cluster, adversary, 120.0, &mut rng1, &mut t1)
        .unwrap();

    // Churn path with an empty plan: same cluster state, same RNG seed.
    let mut live = testbed.cluster.snapshot();
    live.take_events(); // the snapshot starts with a clean trace
    let mut plan = FaultPlan::compile(&ChaosConfig::none(), 0xC4A0, 0, 0.0, 5000.0);
    let mut rng2 = StdRng::seed_from_u64(77);
    let mut t2 = Telemetry::for_unit(1);
    let churn = detector
        .detect_churn_telemetry(
            &mut live, &mut plan, 0, adversary, 120.0, None, &mut rng2, &mut t2,
        )
        .unwrap();

    assert_eq!(legacy, churn);
    let log1 = bolt::TelemetryLog::from_events(t1.into_events()).normalized();
    let log2 = bolt::TelemetryLog::from_events(t2.into_events()).normalized();
    assert_eq!(
        log1, log2,
        "an empty plan must not leave a telemetry fingerprint"
    );
}

#[test]
fn none_plan_hunt_loop_is_bit_identical_to_detect_until() {
    let config = small_config(0xBEEF);
    let testbed = build_testbed(&config, &LeastLoaded).unwrap();
    let detector = fitted_detector(&config);
    let adversary = testbed.adversaries[1];

    let mut rng1 = StdRng::seed_from_u64(5);
    let (legacy, iters1) = detector
        .detect_until(&testbed.cluster, adversary, 30.0, |_| false, &mut rng1)
        .unwrap();

    let mut live = testbed.cluster.snapshot();
    live.take_events();
    let mut plan = FaultPlan::compile(&ChaosConfig::none(), 1, 1, 0.0, 5000.0);
    let mut rng2 = StdRng::seed_from_u64(5);
    let (churn, iters2) = detector
        .detect_until_churn(
            &mut live,
            &mut plan,
            &RetryPolicy::default(),
            adversary,
            30.0,
            |_| false,
            &mut rng2,
        )
        .unwrap();

    assert_eq!(legacy, churn);
    assert_eq!(iters1, iters2);
}

#[test]
fn chaos_off_experiment_telemetry_carries_no_chaos_artifacts() {
    let config = small_config(0xA5FA11);
    assert!(
        config.chaos.is_none(),
        "the default config must be chaos-off"
    );
    let (_, log) = run_experiment_telemetry(&config, &LeastLoaded).unwrap();
    assert!(!log.is_empty());
    assert_eq!(log.counter_total(Counter::FaultsInjected), 0);
    assert_eq!(log.counter_total(Counter::WindowsDiscarded), 0);
    assert_eq!(log.counter_total(Counter::DetectionRetries), 0);
    let jsonl = log.to_jsonl();
    assert!(!jsonl.contains("\"kind\":\"degrade\""));
    assert!(!jsonl.contains("\"kind\":\"probe-fault\""));
    assert!(!jsonl.contains("faults-injected"));
}

#[test]
fn mrc_channel_off_is_byte_invisible() {
    // With the channel off, varying the sweep resolution must not move a
    // byte: no extra RNG draw, no telemetry span, no counter.
    let base = small_config(0xA5FA11);
    let decorated = ExperimentConfig {
        detector: DetectorConfig {
            mrc_points: 31,
            ..base.detector
        },
        ..base
    };
    assert!(!base.mrc_channel && !base.detector.mrc_channel);
    let a = run_experiment_telemetry(&base, &LeastLoaded).unwrap();
    let b = run_experiment_telemetry(&decorated, &LeastLoaded).unwrap();
    assert_eq!(a.0.records, b.0.records);
    assert_eq!(a.1.normalized().to_jsonl(), b.1.normalized().to_jsonl());
    let jsonl = a.1.to_jsonl();
    assert_eq!(a.1.counter_total(Counter::MrcProbePoints), 0);
    assert_eq!(a.1.counter_total(Counter::MrcTieBreaks), 0);
    assert!(
        !jsonl.contains("mrc-"),
        "channel-off telemetry must not mention the mrc channel"
    );
}

#[test]
fn mrc_hunts_are_parallelism_invariant() {
    // The channel's extra RNG draws are per-hunt, so Serial and Threads(n)
    // must still produce bit-identical fingerprints.
    let serial = ExperimentConfig {
        mrc_channel: true,
        parallelism: Parallelism::Serial,
        ..small_config(0x3C5)
    };
    let threaded = ExperimentConfig {
        parallelism: Parallelism::Threads(3),
        ..serial
    };
    let a = run_experiment_telemetry(&serial, &LeastLoaded).unwrap();
    let b = run_experiment_telemetry(&threaded, &LeastLoaded).unwrap();
    assert_eq!(a.0.records, b.0.records);
    assert_eq!(a.1.normalized().to_jsonl(), b.1.normalized().to_jsonl());
    assert!(
        a.1.counter_total(Counter::MrcProbePoints) > 0,
        "channel-on hunts must actually sweep"
    );
}

proptest! {
    // Each case runs two full experiments; keep the count small and scale
    // up via PROPTEST_CASES when hunting.
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn chaos_off_records_never_depend_on_the_chaos_fields(
        seed in 0u64..1_000_000,
        max_retries in 0usize..5,
        workers in 1usize..5,
    ) {
        // Varying every chaos-adjacent knob while the engine is off must
        // not move a single byte of the results.
        let base = ExperimentConfig {
            parallelism: Parallelism::Serial,
            ..small_config(seed)
        };
        let decorated = ExperimentConfig {
            parallelism: Parallelism::Threads(workers),
            retry: RetryPolicy {
                max_retries,
                initial_backoff_s: 99.0,
                backoff_mult: 3.0,
                probe_budget_s: 1.0,
                abort_on_exhaustion: true,
            },
            ..base
        };
        let a = run_experiment_telemetry(&base, &LeastLoaded).expect("base runs");
        let b = run_experiment_telemetry(&decorated, &LeastLoaded).expect("decorated runs");
        prop_assert_eq!(&a.0.records, &b.0.records);
        prop_assert_eq!(
            a.1.normalized().to_jsonl(),
            b.1.normalized().to_jsonl()
        );
    }
}
