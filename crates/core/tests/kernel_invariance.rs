//! End-to-end pin: the unrolled kernels change wall-clock only.
//!
//! Runs the full experiment pipeline twice at the benchmark configuration —
//! once with the production kernels and once with every kernel rerouted to
//! its naive scalar reference (`kernels::force_reference`) — and demands
//! byte-identical records and normalized telemetry. This is the gate that
//! lets the 35 committed `bench_results/` CSVs stay frozen across kernel
//! work: if this test passes, regenerating them cannot change a byte
//! outside wall-clock columns.

use bolt::experiment::{run_experiment_cache_telemetry, ExperimentConfig};
use bolt::parallel::Parallelism;
use bolt::FitCache;
use bolt_linalg::kernels;
use bolt_sim::LeastLoaded;

/// The crit_run_experiment benchmark configuration, at two seeds.
fn config(seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        servers: 8,
        victims: 16,
        seed,
        parallelism: Parallelism::Serial,
        ..ExperimentConfig::default()
    }
}

#[test]
fn unrolled_kernels_are_invisible_end_to_end() {
    for seed in [ExperimentConfig::default().seed, 7, 20170417] {
        let cfg = config(seed);

        kernels::force_reference(false);
        let (fast, fast_log) = run_experiment_cache_telemetry(&cfg, &LeastLoaded, &FitCache::new())
            .expect("kernel run succeeds");

        kernels::force_reference(true);
        let (slow, slow_log) = run_experiment_cache_telemetry(&cfg, &LeastLoaded, &FitCache::new())
            .expect("reference run succeeds");
        kernels::force_reference(false);

        assert_eq!(
            fast.records, slow.records,
            "records diverged at seed {seed}: a kernel is not bit-exact"
        );
        assert_eq!(
            fast_log.normalized(),
            slow_log.normalized(),
            "telemetry diverged at seed {seed}: a kernel is not bit-exact"
        );
    }
}
