//! Anytime-window contracts: off means byte-invisible, on means
//! deterministic across thread counts, the confidence threshold gates
//! the early exit, and reported confidence is monotone non-decreasing
//! in the probe budget.

use bolt::detector::{Detector, DetectorConfig};
use bolt::experiment::{run_experiment_telemetry, ExperimentConfig};
use bolt::telemetry::Counter;
use bolt::Parallelism;
use bolt_recommender::{HybridRecommender, RecommenderConfig, TrainingData};
use bolt_sim::vm::VmRole;
use bolt_sim::LeastLoaded;
use bolt_sim::{Cluster, IsolationConfig, ServerSpec, VmId};
use bolt_workloads::catalog;
use bolt_workloads::training::training_set;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_config(seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        servers: 6,
        victims: 12,
        seed,
        ..ExperimentConfig::default()
    }
}

/// One core-sharing host: the adversary plus a production-sized victim
/// whose 8 vCPUs guarantee shared physical cores, so the anytime window
/// keeps a usable core channel and never reaches the shutter fallback.
fn core_sharing_setup() -> (Cluster, VmId) {
    let mut r = StdRng::seed_from_u64(0xA117);
    let mut cluster =
        Cluster::new(1, ServerSpec::xeon(), IsolationConfig::cloud_default()).unwrap();
    let adv = catalog::memcached::profile(&catalog::memcached::Variant::Mixed, &mut r);
    let adv_id = cluster.launch_on(0, adv, VmRole::Adversarial, 0.0).unwrap();
    cluster
        .set_pressure_override(adv_id, Some(bolt_workloads::PressureVector::zero()))
        .unwrap();
    let victim = catalog::memcached::profile(&catalog::memcached::Variant::ReadHeavyKb, &mut r)
        .with_vcpus(8);
    cluster.launch_on(0, victim, VmRole::Friendly, 0.0).unwrap();
    (cluster, adv_id)
}

fn fitted_detector(config: DetectorConfig) -> Detector {
    let data = TrainingData::from_profiles(&training_set(7)).unwrap();
    let rec = HybridRecommender::fit(data, RecommenderConfig::default()).unwrap();
    Detector::new(rec, config)
}

#[test]
fn anytime_off_is_byte_invisible() {
    // With the flag off, varying every anytime knob must not move a
    // byte: no extra RNG draw, no telemetry span, no counter.
    let base = small_config(0xA217);
    let decorated = ExperimentConfig {
        detector: DetectorConfig {
            confidence_threshold: 0.99,
            anytime_max_probes: 3,
            anytime_batch: 7,
            ..base.detector
        },
        ..base
    };
    assert!(!base.anytime && !base.detector.anytime);
    let a = run_experiment_telemetry(&base, &LeastLoaded).unwrap();
    let b = run_experiment_telemetry(&decorated, &LeastLoaded).unwrap();
    assert_eq!(a.0.records, b.0.records);
    assert_eq!(a.1.normalized().to_jsonl(), b.1.normalized().to_jsonl());
    let jsonl = a.1.to_jsonl();
    assert_eq!(a.1.counter_total(Counter::ProbesSaved), 0);
    assert!(
        !jsonl.contains("anytime-deepen") && !jsonl.contains("probes-saved"),
        "flag-off telemetry must not mention the anytime window"
    );
}

#[test]
fn anytime_hunts_are_parallelism_invariant() {
    // The deepening loop's extra RNG draws are per-hunt, so Serial and
    // Threads(n) must still produce bit-identical records and telemetry.
    let serial = ExperimentConfig {
        anytime: true,
        parallelism: Parallelism::Serial,
        ..small_config(0x3C6)
    };
    let threaded = ExperimentConfig {
        parallelism: Parallelism::Threads(3),
        ..serial
    };
    let a = run_experiment_telemetry(&serial, &LeastLoaded).unwrap();
    let b = run_experiment_telemetry(&threaded, &LeastLoaded).unwrap();
    assert_eq!(a.0.records, b.0.records);
    assert_eq!(a.1.normalized().to_jsonl(), b.1.normalized().to_jsonl());
    assert!(
        a.1.counter_total(Counter::ProbesSaved) > 0,
        "anytime hunts must actually save probes over the fixed window"
    );
}

#[test]
fn threshold_gates_the_early_exit() {
    // A reachable threshold lets the window stop the moment its verdict
    // is stable; an unreachable one (confidence is clamped to 1.0) forces
    // the full deepening loop. Same seed, same world — the only
    // difference is the exit test, so the low-threshold run can never
    // spend more probes.
    let (cluster, adv) = core_sharing_setup();
    let run = |threshold: f64| {
        let det = fitted_detector(DetectorConfig {
            anytime: true,
            confidence_threshold: threshold,
            ..DetectorConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(0xEA51);
        det.detect(&cluster, adv, 100.0, &mut rng).unwrap()
    };
    let eager = run(0.0);
    let exhaustive = run(1.5);

    let eager_info = eager.anytime.expect("anytime detections carry stats");
    let exhaustive_info = exhaustive.anytime.expect("anytime detections carry stats");
    assert!(
        eager_info.converged,
        "a zero threshold must stop at the first stable verdict"
    );
    assert!(
        !exhaustive_info.converged,
        "an unreachable threshold must never report convergence"
    );
    assert!(
        eager_info.probes_used < exhaustive_info.probes_used,
        "early exit must save probes ({} vs {})",
        eager_info.probes_used,
        exhaustive_info.probes_used
    );
    assert!(!eager.verdicts.is_empty(), "the host is not idle");
}

#[test]
fn confidence_is_monotone_in_the_probe_budget() {
    // Budget-prefix determinism: the probe sequence under a budget of k
    // is a prefix of the sequence under any larger budget, and reported
    // confidence is the running maximum over evaluation rounds — so more
    // budget can never lower it. The threshold is unreachable to keep
    // every run from exiting early.
    let (cluster, adv) = core_sharing_setup();
    let mut last_confidence = -1.0;
    let mut last_probes = 0usize;
    for budget in [12, 14, 16, 20] {
        let det = fitted_detector(DetectorConfig {
            anytime: true,
            confidence_threshold: 1.5,
            anytime_max_probes: budget,
            ..DetectorConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(0xB07);
        let d = det.detect(&cluster, adv, 60.0, &mut rng).unwrap();
        let info = d.anytime.expect("anytime detections carry stats");
        assert!(!info.converged);
        assert!(
            d.confidence >= last_confidence,
            "budget {budget}: confidence {} dropped below {}",
            d.confidence,
            last_confidence
        );
        assert!(
            info.probes_used >= last_probes,
            "budget {budget}: probes {} below {}",
            info.probes_used,
            last_probes
        );
        last_confidence = d.confidence;
        last_probes = info.probes_used;
    }
    assert!(
        last_confidence > 0.0,
        "the deepening loop must produce a confident verdict at full budget"
    );
}
