//! Honesty properties of the streaming service loop: every offered request
//! terminates in exactly one outcome, the admitted count conserves across
//! outcomes, degraded verdicts never outrank the clean verdict the same
//! request earns on a calm cluster, and thread fan-out moves no bytes.

use bolt::service::{
    run_service, run_service_telemetry, RequestOutcome, ServiceConfig, ShedReason,
};
use bolt::Parallelism;
use bolt_sim::{ChaosConfig, StormConfig};
use proptest::prelude::*;

fn small_config(seed: u64) -> ServiceConfig {
    ServiceConfig {
        servers: 3,
        vms_per_server: 2,
        requests: 12,
        seed,
        parallelism: Parallelism::Serial,
        ..ServiceConfig::default()
    }
}

proptest! {
    // Each case runs three full service loops; keep the count small and
    // scale up via PROPTEST_CASES when hunting.
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn admitted_requests_terminate_exactly_once_and_honestly(
        seed in 0u64..1_000_000,
        rate_decis in 20u32..120,
        chaos_pct in 30u32..=100,
    ) {
        let calm = ServiceConfig {
            arrival_rate_per_min: f64::from(rate_decis) / 10.0,
            ..small_config(seed)
        };
        let stormy = ServiceConfig {
            chaos: ChaosConfig::with_intensity(f64::from(chaos_pct) / 100.0),
            storm: StormConfig::with_intensity(f64::from(chaos_pct) / 100.0),
            ..calm
        };

        let calm_report = run_service(&calm).unwrap();
        let (stormy_report, stormy_log) = run_service_telemetry(&stormy).unwrap();

        for report in [&calm_report, &stormy_report] {
            // Totality: one terminal record per offered request, dense in
            // trace order — nothing vanishes, nothing terminates twice.
            prop_assert_eq!(report.records.len(), report.offered);
            for (i, r) in report.records.iter().enumerate() {
                prop_assert_eq!(r.id, i);
            }
            // Conservation: admission partitions the offered load, and
            // every admitted request lands in exactly one executed bucket.
            prop_assert_eq!(report.offered, report.admitted + report.shed_at_admission);
            prop_assert!(report.balanced(), "count identity violated: {:?}", report);
            let executed_sheds = report
                .records
                .iter()
                .filter(|r| {
                    matches!(
                        r.outcome,
                        RequestOutcome::Shed { reason: ShedReason::BreakerOpen }
                    )
                })
                .count();
            prop_assert_eq!(executed_sheds, report.shed_after_admission);
        }

        // Honest degradation: a verdict flagged degraded under chaos never
        // reports more confidence than the clean verdict the same request
        // (matched by arrival tick — the base trace draws are storm-
        // invariant) earns on the calm cluster.
        for stormy_rec in stormy_report.records.iter().filter(|r| !r.from_storm) {
            let RequestOutcome::Degraded { confidence: degraded_conf, .. } = &stormy_rec.outcome
            else {
                continue;
            };
            let calm_rec = calm_report
                .records
                .iter()
                .find(|r| r.arrival_s.to_bits() == stormy_rec.arrival_s.to_bits());
            let Some(calm_rec) = calm_rec else { continue };
            if let RequestOutcome::Completed { confidence, .. } = &calm_rec.outcome {
                if *confidence >= calm.detector.confidence_threshold {
                    prop_assert!(
                        degraded_conf <= confidence,
                        "degraded verdict ({}) outranks the calm clean verdict ({})",
                        degraded_conf,
                        confidence
                    );
                }
            }
        }

        // Thread fan-out moves no bytes: report and normalized telemetry
        // are identical at Threads(3).
        let threaded = ServiceConfig {
            parallelism: Parallelism::Threads(3),
            ..stormy
        };
        let (threaded_report, threaded_log) = run_service_telemetry(&threaded).unwrap();
        prop_assert_eq!(&stormy_report, &threaded_report);
        prop_assert_eq!(stormy_log.normalized(), threaded_log.normalized());
    }
}
