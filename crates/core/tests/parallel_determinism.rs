//! Property tests for the parallel experiment engine's determinism
//! claims: thread count must never change results, only wall-clock.

use bolt::experiment::{
    run_experiment, run_experiment_cache, run_experiment_cache_telemetry, ExperimentConfig,
};
use bolt::parallel::{sweep, Parallelism};
use bolt::FitCache;
use bolt_sim::LeastLoaded;
use proptest::prelude::*;

proptest! {
    // Each case runs three full experiments; keep the count small and
    // scale up via PROPTEST_CASES when hunting.
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn thread_count_never_changes_experiment_records(
        seed in 0u64..1_000_000,
        servers in 4usize..7,
        victims in 6usize..10,
    ) {
        let config = |parallelism| ExperimentConfig {
            servers,
            victims,
            seed,
            parallelism,
            ..ExperimentConfig::default()
        };
        let serial = run_experiment(&config(Parallelism::Serial), &LeastLoaded)
            .expect("serial runs");
        let one = run_experiment(&config(Parallelism::Threads(1)), &LeastLoaded)
            .expect("1 thread runs");
        let two = run_experiment(&config(Parallelism::Threads(2)), &LeastLoaded)
            .expect("2 threads run");
        let eight = run_experiment(&config(Parallelism::Threads(8)), &LeastLoaded)
            .expect("8 threads run");
        prop_assert_eq!(&serial.records, &one.records);
        prop_assert_eq!(&serial.records, &two.records);
        prop_assert_eq!(&serial.records, &eight.records);
    }

    #[test]
    fn fit_cache_preserves_thread_count_invariance(
        seed in 0u64..1_000_000,
        servers in 4usize..7,
        victims in 6usize..10,
    ) {
        // With a shared cache (warm or cold), thread count must still
        // never change a byte: records, telemetry event streams, and the
        // cache's hit/miss accounting all have to match the serial run.
        let config = |parallelism| ExperimentConfig {
            servers,
            victims,
            seed,
            parallelism,
            ..ExperimentConfig::default()
        };
        let serial_cache = FitCache::new();
        let (serial, serial_log) =
            run_experiment_cache_telemetry(&config(Parallelism::Serial), &LeastLoaded, &serial_cache)
                .expect("serial runs");
        let threaded_cache = FitCache::new();
        let (threaded, threaded_log) =
            run_experiment_cache_telemetry(&config(Parallelism::Threads(3)), &LeastLoaded, &threaded_cache)
                .expect("3 threads run");
        prop_assert_eq!(&serial.records, &threaded.records);
        prop_assert_eq!(serial_log.normalized(), threaded_log.normalized());
        prop_assert_eq!(serial_cache.stats(), threaded_cache.stats());
        // A warm cache changes wall-clock only: re-running against the
        // already-populated serial cache reproduces the records again.
        let warm = run_experiment_cache(&config(Parallelism::Threads(2)), &LeastLoaded, &serial_cache)
            .expect("warm cache runs");
        prop_assert_eq!(&serial.records, &warm.records);
        prop_assert_eq!(serial_cache.stats().hits, 1);
        // Disabling the cache must not change results either.
        let uncached = run_experiment_cache(&config(Parallelism::Serial), &LeastLoaded, &FitCache::disabled())
            .expect("uncached runs");
        prop_assert_eq!(&serial.records, &uncached.records);
    }
}

proptest! {
    #[test]
    fn sweep_is_an_order_preserving_map(
        items in proptest::collection::vec(0u64..1_000_000, 0..40),
        workers in 1usize..12,
    ) {
        let f = |idx: usize, &x: &u64| x.wrapping_mul(0x9E37_79B9).rotate_left(7) ^ idx as u64;
        let serial: Vec<u64> = items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
        let threaded = sweep(&items, Parallelism::Threads(workers), f);
        prop_assert_eq!(serial, threaded);
    }
}
