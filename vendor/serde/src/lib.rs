//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its result types but
//! never invokes a serializer (there is no `serde_json` or similar in the
//! dependency tree). This vendored crate therefore provides the two trait
//! names as empty marker traits plus no-op derive macros, so the derive
//! attributes and trait bounds keep compiling without any network access.
//! Swapping the real `serde` back in requires no source changes.

#![warn(missing_docs)]

/// Marker stand-in for `serde::Serialize` (no serializer exists in this
/// workspace, so the trait carries no methods).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (no deserializer exists in
/// this workspace, so the trait carries no methods).
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
