//! ChaCha block core with the `rand_chacha` 0.3 state layout: 64-bit block
//! counter in words 12–13, 64-bit stream id in words 14–15 (always zero for
//! `StdRng`), and four sequential blocks generated per refill.

/// One ChaCha quarter round.
#[inline(always)]
fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

/// Runs the ChaCha block function over `input` for `double_rounds * 2`
/// rounds and writes the feed-forward sum into `out`.
pub(crate) fn block(input: &[u32; 16], double_rounds: usize, out: &mut [u32; 16]) {
    let mut x = *input;
    for _ in 0..double_rounds {
        // Column round.
        quarter(&mut x, 0, 4, 8, 12);
        quarter(&mut x, 1, 5, 9, 13);
        quarter(&mut x, 2, 6, 10, 14);
        quarter(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter(&mut x, 0, 5, 10, 15);
        quarter(&mut x, 1, 6, 11, 12);
        quarter(&mut x, 2, 7, 8, 13);
        quarter(&mut x, 3, 4, 9, 14);
    }
    for i in 0..16 {
        out[i] = x[i].wrapping_add(input[i]);
    }
}

/// ChaCha12 core state for `StdRng`.
#[derive(Debug, Clone)]
pub(crate) struct ChaCha12Core {
    state: [u32; 16],
}

/// Words produced per refill: four 16-word blocks, as `rand_chacha` buffers.
pub(crate) const BUFFER_WORDS: usize = 64;

impl ChaCha12Core {
    /// "expand 32-byte k" constants.
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

    pub(crate) fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&Self::SIGMA);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        // Words 12..16: 64-bit block counter then 64-bit stream id, all 0.
        ChaCha12Core { state }
    }

    fn counter(&self) -> u64 {
        (self.state[12] as u64) | ((self.state[13] as u64) << 32)
    }

    fn set_counter(&mut self, ctr: u64) {
        self.state[12] = ctr as u32;
        self.state[13] = (ctr >> 32) as u32;
    }

    /// Generates the next four sequential blocks into `out` and advances the
    /// block counter by 4.
    pub(crate) fn refill(&mut self, out: &mut [u32; BUFFER_WORDS]) {
        let base = self.counter();
        for blk in 0..4u64 {
            self.set_counter(base.wrapping_add(blk));
            let mut tmp = [0u32; 16];
            block(&self.state, 6, &mut tmp);
            out[blk as usize * 16..blk as usize * 16 + 16].copy_from_slice(&tmp);
        }
        self.set_counter(base.wrapping_add(4));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.3.2: ChaCha20 block function test vector, mapped onto
    /// this implementation's word layout (counter low word 12, remaining
    /// nonce words 13..16), run at 20 rounds.
    #[test]
    fn rfc8439_chacha20_block() {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&[0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574]);
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        state[12] = 1; // block counter
        state[13] = 0x0900_0000; // nonce words, little-endian
        state[14] = 0x4a00_0000;
        state[15] = 0;

        let mut out = [0u32; 16];
        block(&state, 10, &mut out);

        let expected: [u32; 16] = [
            0xe4e7_f110, 0x1559_3bd1, 0x1fdd_0f50, 0xc471_20a3, 0xc7f4_d1c7, 0x0368_c033,
            0x9aaa_2204, 0x4e6c_d4c3, 0x4664_82d2, 0x09aa_9f07, 0x05d7_c214, 0xa202_8bd9,
            0xd19c_12b5, 0xb94e_16de, 0xe883_d0cb, 0x4e3c_50a2,
        ];
        assert_eq!(out, expected);
    }

    #[test]
    fn refill_produces_distinct_sequential_blocks() {
        let mut core = ChaCha12Core::from_seed([7u8; 32]);
        let mut buf = [0u32; BUFFER_WORDS];
        core.refill(&mut buf);
        assert_ne!(buf[..16], buf[16..32], "blocks differ by counter");
        // A fresh core skipped ahead by hand reproduces block 1.
        let mut core2 = ChaCha12Core::from_seed([7u8; 32]);
        core2.set_counter(1);
        let mut buf2 = [0u32; BUFFER_WORDS];
        core2.refill(&mut buf2);
        assert_eq!(buf[16..32], buf2[..16]);
    }
}
