//! Offline stand-in for the `rand` 0.8 crate.
//!
//! This workspace pins statistical test thresholds against the exact
//! `StdRng` stream of upstream `rand` 0.8 (`rand_chacha`'s `ChaCha12Rng`).
//! The build environment has no network access and no crates.io mirror, so
//! this vendored crate re-implements — bit for bit — the subset of the
//! `rand` API the workspace actually uses:
//!
//! * [`rngs::StdRng`]: ChaCha12 block cipher RNG, four 16-word blocks per
//!   refill, 64-bit block counter, `BlockRng` word-buffer semantics
//!   (including the split-`u64` edge case at the end of the buffer).
//! * [`SeedableRng::seed_from_u64`]: PCG32-based 32-byte seed expansion,
//!   identical to `rand_core` 0.6.
//! * [`Rng::gen`] for `f64` (53-bit multiply conversion), integers and
//!   `bool`.
//! * [`Rng::gen_range`] over half-open and inclusive integer ranges
//!   (Lemire widening-multiply rejection sampling) and `f64` ranges.
//! * [`Rng::gen_bool`] (Bernoulli via 64-bit integer threshold).
//! * [`seq::SliceRandom::shuffle`] (reverse Fisher–Yates over
//!   `gen_range(0..=i)`) and [`seq::SliceRandom::choose`].
//!
//! The ChaCha core is validated against the RFC 8439 test vector (run at
//! 20 rounds); the stream layout is validated by the workspace's own
//! seed-pinned statistical tests, which were tuned on upstream `rand`.

#![warn(missing_docs)]

mod chacha;
pub mod rngs;
pub mod seq;

/// The core of every random number generator: a source of random words.
///
/// Mirrors `rand_core::RngCore` for the methods this workspace uses.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An RNG that can be instantiated from a seed.
///
/// Mirrors `rand_core::SeedableRng`; `seed_from_u64` reproduces the PCG32
/// seed-expansion of `rand_core` 0.6 exactly.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a new instance from the full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a new instance by expanding a `u64` through a PCG32 stream
    /// (identical constants and byte order to `rand_core` 0.6).
    fn seed_from_u64(mut state: u64) -> Self {
        // PCG32 constants from rand_core 0.6.
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;

        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types sampled by [`Rng::gen`] (the `Standard` distribution of upstream
/// `rand`, folded into a single trait here).
pub trait SampleStandard {
    /// Draws one value from the generator.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Multiply-based conversion with 53 bits of precision (rand 0.8).
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 64-bit platforms only (as upstream on such targets).
        rng.next_u64() as usize
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Compare against the most significant bit (rand 0.8).
        (rng.next_u32() as i32) < 0
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uniform_int_impl {
    ($ty:ty) => {
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                sample_inclusive_u64(self.start as u64, (self.end - 1) as u64, rng) as $ty
            }
        }

        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample empty range");
                sample_inclusive_u64(low as u64, high as u64, rng) as $ty
            }
        }
    };
}

uniform_int_impl!(usize);
uniform_int_impl!(u64);
uniform_int_impl!(u32);

/// Lemire's widening-multiply rejection sampler over `[low, high]`, exactly
/// as `rand` 0.8's `UniformInt::sample_single_inclusive` for 64-bit types.
fn sample_inclusive_u64<R: RngCore + ?Sized>(low: u64, high: u64, rng: &mut R) -> u64 {
    let range = high.wrapping_sub(low).wrapping_add(1);
    if range == 0 {
        // Full integer range: every value is acceptable.
        return rng.next_u64();
    }
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let m = (v as u128).wrapping_mul(range as u128);
        let hi = (m >> 64) as u64;
        let lo = m as u64;
        if lo <= zone {
            return low.wrapping_add(hi);
        }
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        // UniformFloat::sample_single (rand 0.8): scale * value01 + offset
        // computed from a 52-bit mantissa draw in [1, 2).
        assert!(self.start < self.end, "cannot sample empty range");
        let scale = self.end - self.start;
        let value1_2 = f64::from_bits((rng.next_u64() >> 12) | 1.0f64.to_bits());
        let value0_1 = value1_2 - 1.0;
        value0_1 * scale + self.start
    }
}

/// Convenience methods on random number generators (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (Bernoulli, rand 0.8 semantics).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is outside [0, 1]");
        if p == 1.0 {
            // Upstream maps p == 1 to an always-true sentinel.
            return true;
        }
        let p_int = (p * (2.0 * (1u64 << 63) as f64)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Commonly used traits and types, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seed_expansion_matches_pcg32_structure() {
        // seed_from_u64 must give a deterministic, seed-sensitive stream.
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let xb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let xc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn gen_range_is_in_bounds_and_hits_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.gen_range(0..5usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..5 reachable");
        for i in 0..50usize {
            let v = rng.gen_range(0..=i);
            assert!(v <= i);
        }
    }

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, (0..20).collect::<Vec<_>>(), "20 elements should move");
    }

    #[test]
    fn gen_bool_rates() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..2000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((350..650).contains(&hits), "hits={hits}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }
}
