//! Sequence-related helpers (mirrors the used subset of `rand::seq`).

use crate::{Rng, RngCore};

/// Extension trait on slices for random operations.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (reverse Fisher–Yates, identical draw
    /// order to `rand` 0.8: `gen_range(0..=i)` for `i = len-1 .. 1`).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }
}
