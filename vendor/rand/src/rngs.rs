//! RNG implementations (only [`StdRng`] is provided).

use crate::chacha::{ChaCha12Core, BUFFER_WORDS};
use crate::{RngCore, SeedableRng};

/// The standard RNG: ChaCha12, bit-exact with `rand` 0.8's `StdRng`.
///
/// Buffering follows `rand_core::block::BlockRng`: 64 output words per
/// refill (four ChaCha blocks), `next_u64` consuming two adjacent words and
/// straddling a refill when only one word remains.
#[derive(Debug, Clone)]
pub struct StdRng {
    core: ChaCha12Core,
    results: [u32; BUFFER_WORDS],
    index: usize,
}

impl StdRng {
    fn generate(&mut self) {
        let mut buf = [0u32; BUFFER_WORDS];
        self.core.refill(&mut buf);
        self.results = buf;
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        StdRng {
            core: ChaCha12Core::from_seed(seed),
            results: [0u32; BUFFER_WORDS],
            // Start exhausted so the first draw triggers a refill.
            index: BUFFER_WORDS,
        }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUFFER_WORDS {
            self.generate();
            self.index = 0;
        }
        let value = self.results[self.index];
        self.index += 1;
        value
    }

    fn next_u64(&mut self) -> u64 {
        let read_u64 = |results: &[u32; BUFFER_WORDS], index: usize| {
            (u64::from(results[index + 1]) << 32) | u64::from(results[index])
        };
        let index = self.index;
        if index < BUFFER_WORDS - 1 {
            self.index += 2;
            read_u64(&self.results, index)
        } else if index >= BUFFER_WORDS {
            self.generate();
            self.index = 2;
            read_u64(&self.results, 0)
        } else {
            // Exactly one word left: low half now, high half after refill.
            let x = u64::from(self.results[BUFFER_WORDS - 1]);
            self.generate();
            self.index = 1;
            let y = u64::from(self.results[0]);
            (y << 32) | x
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_u64_straddles_refill_boundary() {
        // Drain 63 words with next_u32, then a next_u64 must combine the
        // last word of this buffer with the first of the next.
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        for _ in 0..BUFFER_WORDS - 1 {
            a.next_u32();
            b.next_u32();
        }
        let straddled = a.next_u64();
        // b: consume the final word, then the first of the next buffer.
        let lo = b.next_u32();
        let hi = b.next_u32();
        assert_eq!(straddled as u32, lo, "low half is the leftover word 63");
        assert_eq!(straddled, (u64::from(hi) << 32) | u64::from(lo));
        // Both rngs sit at word 1 of the fresh buffer and agree again.
        assert_eq!(a.next_u32(), b.next_u32());
    }
}
