//! Offline stand-in for the `criterion` crate.
//!
//! Provides `Criterion::bench_function`, `Bencher::iter`,
//! `criterion_group!`/`criterion_main!`, and `black_box` with honest
//! wall-clock measurement (calibrated batch size, multiple samples, mean ±
//! standard deviation printed per benchmark). There are no HTML reports,
//! statistical regression tests, or command-line filters.
//!
//! `BOLT_BENCH_QUICK=1` in the environment shortens measurement to one
//! sample for smoke runs (used by CI's `--no-run`-adjacent checks).

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for compatibility.
pub use std::hint::black_box;

/// Benchmark driver (the stand-in for `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_count: usize,
    target_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::var("BOLT_BENCH_QUICK").map(|v| v == "1").unwrap_or(false);
        Criterion {
            sample_count: if quick { 1 } else { 10 },
            target_sample_time: Duration::from_millis(if quick { 20 } else { 150 }),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark (chainable).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(1);
        self
    }

    /// Sets the total measurement time budget per benchmark (chainable).
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.target_sample_time = t / self.sample_count.max(1) as u32;
        self
    }

    /// Runs one benchmark and prints its timing.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_count: self.sample_count,
            target_sample_time: self.target_sample_time,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(id);
        self
    }
}

/// Times a closure in calibrated batches (stand-in for
/// `criterion::Bencher`).
#[derive(Debug)]
pub struct Bencher {
    sample_count: usize,
    target_sample_time: Duration,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measures `inner`, retaining per-iteration nanosecond samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut inner: R) {
        // Calibration: time a single iteration, then size batches to the
        // per-sample budget (at least 1 iteration per batch).
        let t0 = Instant::now();
        black_box(inner());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_batch = (self.target_sample_time.as_nanos() / once.as_nanos()).clamp(1, 1_000_000)
            as u64;

        self.samples_ns.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(inner());
            }
            let elapsed = start.elapsed();
            self.samples_ns
                .push(elapsed.as_nanos() as f64 / per_batch as f64);
        }
    }

    fn report(&self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let n = self.samples_ns.len() as f64;
        let mean = self.samples_ns.iter().sum::<f64>() / n;
        let var = self
            .samples_ns
            .iter()
            .map(|s| (s - mean) * (s - mean))
            .sum::<f64>()
            / n;
        println!(
            "{id:<40} time: [{} ± {}]",
            format_ns(mean),
            format_ns(var.sqrt())
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        std::env::set_var("BOLT_BENCH_QUICK", "1");
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs > 0);
    }
}
