//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::ops::{Range, RangeInclusive};

/// Inclusive bounds on a generated collection's length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64 + 1;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates a `Vec` whose length falls in `size` and whose elements come
/// from `element` (mirrors `proptest::collection::vec`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
