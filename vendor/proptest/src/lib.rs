//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses — the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`collection::vec`], [`array::uniform10`], [`any`],
//! [`Just`], the `proptest!` test macro, `ProptestConfig::with_cases`, and
//! the `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros — on top of
//! a deterministic splitmix64 generator.
//!
//! Differences from upstream: no shrinking (failing cases report their
//! generated inputs instead), and case generation is deterministic per
//! test name rather than seeded from OS entropy. `PROPTEST_CASES` in the
//! environment overrides the case count exactly as upstream.

#![warn(missing_docs)]

pub mod array;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, Just, Strategy};
pub use test_runner::ProptestConfig;

/// Commonly used imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Defines property tests. Mirrors `proptest::proptest!` including the
/// optional `#![proptest_config(...)]` header.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let __cases = __config.resolved_cases();
                let __max_rejects = __config.max_global_rejects();
                let __test_name = concat!(module_path!(), "::", stringify!($name));
                let mut __passed: u32 = 0;
                let mut __rejected: u64 = 0;
                let mut __attempt: u64 = 0;
                while __passed < __cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(__test_name, __attempt);
                    __attempt += 1;
                    let mut __case_desc: ::std::vec::Vec<::std::string::String> =
                        ::std::vec::Vec::new();
                    $(
                        let __value = $crate::strategy::Strategy::generate(&$strat, &mut __rng);
                        __case_desc.push(::std::format!(
                            "{} = {:?}", stringify!($arg), __value
                        ));
                        let $arg = __value;
                    )+
                    let __outcome = (|| -> ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body;
                        ::core::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::core::result::Result::Ok(()) => __passed += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(__why),
                        ) => {
                            __rejected += 1;
                            if __rejected > __max_rejects {
                                panic!(
                                    "{}: too many rejected cases ({}), last: {}",
                                    __test_name, __rejected, __why
                                );
                            }
                        }
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => {
                            panic!(
                                "{} failed on case #{} :: {}\n  inputs:\n    {}",
                                __test_name,
                                __attempt - 1,
                                __msg,
                                __case_desc.join("\n    ")
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (with
/// its generated inputs) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?}` == `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            __l,
            __r,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Rejects the current case (retried with fresh inputs, not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(stringify!($cond)),
            );
        }
    };
}
