//! Fixed-size array strategies (`proptest::array::uniform10`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy returned by [`uniform10`].
#[derive(Debug, Clone)]
pub struct Uniform10<S>(S);

impl<S: Strategy> Strategy for Uniform10<S> {
    type Value = [S::Value; 10];

    fn generate(&self, rng: &mut TestRng) -> [S::Value; 10] {
        core::array::from_fn(|_| self.0.generate(rng))
    }
}

/// Generates a `[T; 10]` with every element drawn from `element`.
pub fn uniform10<S: Strategy>(element: S) -> Uniform10<S> {
    Uniform10(element)
}
