//! Test-runner plumbing: configuration, case RNG, and case errors.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` successful cases (upstream API).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Case count after applying the `PROPTEST_CASES` env override.
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }

    /// Upper bound on `prop_assume!` rejections across the whole test.
    pub fn max_global_rejects(&self) -> u64 {
        (self.resolved_cases() as u64 * 64).max(1024)
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the test fails with this message.
    Fail(String),
    /// A `prop_assume!` precondition was not met; the case is retried.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic per-case generator (splitmix64 over a hash of the test
/// name and the attempt index).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// RNG for attempt number `attempt` of the named test.
    pub fn for_case(test_name: &str, attempt: u64) -> Self {
        // FNV-1a over the test name, mixed with the attempt index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: splitmix64(h ^ splitmix64(attempt)),
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.state)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name_and_attempt() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("x::y", 3);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("x::y", 3);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = TestRng::for_case("x::y", 4);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
