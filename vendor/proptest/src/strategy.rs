//! The [`Strategy`] trait and the primitive strategies.

use crate::test_runner::TestRng;
use core::fmt::Debug;
use core::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking; a strategy
/// simply draws a fresh value per case.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and draws from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.next_f64() * (self.end() - self.start())
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64 + 1;
                // span == 0 means the full u64 domain; fall back to raw.
                if span == 0 {
                    return rng.next_u64() as $ty;
                }
                lo + rng.below(span) as $ty
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
}

/// Types with a canonical "generate anything" strategy (see [`any`]).
pub trait Arbitrary: Sized + Debug {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy generating any value of `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}
