//! No-op `Serialize`/`Deserialize` derives for the vendored serde stand-in.
//!
//! Emits empty marker-trait impls for the derived type. Written without
//! `syn`/`quote` (unavailable offline): the input item is scanned token by
//! token for the `struct`/`enum` keyword and the following type name.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the struct or enum a derive is attached to.
///
/// Panics on generic types — nothing in this workspace derives serde
/// traits on a generic type, and silently emitting a broken impl would be
/// worse than a loud failure here.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" {
                let name = match tokens.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => panic!("expected type name after `{kw}`, found {other:?}"),
                };
                if let Some(TokenTree::Punct(p)) = tokens.peek() {
                    if p.as_char() == '<' {
                        panic!(
                            "vendored serde_derive does not support generic type `{name}`"
                        );
                    }
                }
                return name;
            }
        }
    }
    panic!("derive input contained no struct or enum");
}

/// No-op stand-in for `#[derive(serde::Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// No-op stand-in for `#[derive(serde::Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
