//! Integration tests for the extension paths: unseen application families
//! (PARSEC), the MRC future-work signal, and trace-backed experiment
//! debugging.

use bolt::detector::{Detector, DetectorConfig};
use bolt::experiment::{observe_through, observed_training};
use bolt_recommender::{HybridRecommender, RecommenderConfig, TrainingData};
use bolt_sim::vm::VmRole;
use bolt_sim::{Cluster, IsolationConfig, ServerSpec, TraceEvent};
use bolt_workloads::catalog::{self, parsec};
use bolt_workloads::mrc::{derive_mrc, mrc_separates};
use bolt_workloads::training::training_set;
use bolt_workloads::PressureVector;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn parsec_jobs_are_characterized_but_never_named() {
    let mut rng = StdRng::seed_from_u64(0x9A5C);
    let isolation = IsolationConfig::cloud_default();
    let data = TrainingData::from_examples(observed_training(&training_set(7), &isolation))
        .expect("training data");
    let rec = HybridRecommender::fit(data, RecommenderConfig::default()).expect("fit");
    let det = Detector::new(rec, DetectorConfig::default());

    let mut characterized = 0;
    let total = parsec::Benchmark::ALL.len();
    for bench in parsec::Benchmark::ALL {
        let victim = parsec::profile(&bench, &mut rng).with_vcpus(8);
        let truth_label = victim.label().clone();
        let truth_chars = bolt_workloads::ResourceCharacteristics::from_pressure(&observe_through(
            victim.base_pressure(),
            &isolation,
        ));
        let mut cluster = Cluster::new(1, ServerSpec::xeon(), isolation).expect("cluster");
        let adv = cluster
            .launch_on(
                0,
                catalog::memcached::profile(&catalog::memcached::Variant::Mixed, &mut rng)
                    .with_vcpus(4),
                VmRole::Adversarial,
                0.0,
            )
            .expect("adversary");
        cluster
            .set_pressure_override(adv, Some(PressureVector::zero()))
            .expect("quiet");
        cluster
            .launch_on(0, victim, VmRole::Friendly, 0.0)
            .expect("victim");

        let mut hit = false;
        for i in 0..4 {
            let d = det
                .detect(&cluster, adv, i as f64 * 20.0, &mut rng)
                .expect("detect");
            assert!(
                !d.matches_family(&truth_label),
                "{bench:?} is not in the training set and cannot be named"
            );
            hit |= d.matches_characteristics(&truth_chars);
        }
        characterized += hit as usize;
    }
    assert!(
        characterized >= total - 1,
        "unseen parsec jobs should still be characterized: {characterized}/{total}"
    );
}

#[test]
fn mrc_separates_what_average_pressure_cannot() {
    // The §3.3 future-work signal: two SPEC jobs with close average LLC
    // pressure but opposite reuse behaviour.
    let mut rng = StdRng::seed_from_u64(0x3C5);
    let mcf = catalog::speccpu::profile(&catalog::speccpu::Benchmark::Mcf, &mut rng);
    let lbm = catalog::speccpu::profile(&catalog::speccpu::Benchmark::Lbm, &mut rng);
    assert!(mrc_separates(&mcf, &lbm, 25.0, 0.05));
    let a = derive_mrc(&mcf);
    let b = derive_mrc(&lbm);
    // Curves are proper miss-rate functions.
    for alloc in [0.1, 0.3, 0.6, 1.0] {
        assert!((0.0..=1.0).contains(&a.miss_rate(alloc)));
        assert!((0.0..=1.0).contains(&b.miss_rate(alloc)));
    }
}

#[test]
fn mrc_example_verdict_is_pinned() {
    // Regression for the mrc_extension example: with its exact seed the
    // separation verdict is "yes", and the pressures the example prints
    // (reference, not base — base drifts with the sampled load level)
    // agree with what derive_mrc fits against.
    let mut rng = StdRng::seed_from_u64(0x3C);
    let mcf = catalog::speccpu::profile(&catalog::speccpu::Benchmark::Mcf, &mut rng);
    let lbm = catalog::speccpu::profile(&catalog::speccpu::Benchmark::Lbm, &mut rng);
    assert!(
        mrc_separates(&mcf, &lbm, 25.0, 0.05),
        "the example's seed must keep separating mcf from lbm"
    );
    let llc = bolt_workloads::Resource::Llc;
    let gap = (mcf.reference_pressure()[llc] - lbm.reference_pressure()[llc]).abs();
    assert!(
        gap <= 25.0,
        "the example's premise — close average LLC pressure — must hold, gap {gap}"
    );
}

#[test]
fn trace_reconstructs_an_experiment_timeline() {
    let mut rng = StdRng::seed_from_u64(0x7A);
    let mut cluster =
        Cluster::new(2, ServerSpec::xeon(), IsolationConfig::cloud_default()).expect("cluster");
    let a = cluster
        .launch_on(
            0,
            catalog::hadoop::profile(
                &catalog::hadoop::Algorithm::WordCount,
                bolt_workloads::DatasetScale::Small,
                &mut rng,
            ),
            VmRole::Friendly,
            0.0,
        )
        .expect("launch a");
    let b = cluster
        .launch_pinned(
            1,
            catalog::spark::profile(
                &catalog::spark::Algorithm::KMeans,
                bolt_workloads::DatasetScale::Small,
                &mut rng,
            ),
            VmRole::Friendly,
            10.0,
            &mut rng,
        )
        .expect("launch b");
    cluster.migrate(a, 1).expect("migrate");
    cluster.terminate(b).expect("terminate");

    let events = cluster.take_events();
    assert_eq!(events.len(), 4);
    assert!(matches!(events[0], TraceEvent::Launch { server: 0, .. }));
    assert!(matches!(events[1], TraceEvent::Launch { server: 1, at, .. } if at == 10.0));
    assert!(matches!(
        events[2],
        TraceEvent::Migrate { from: 0, to: 1, .. }
    ));
    assert!(matches!(events[3], TraceEvent::Terminate { server: 1, .. }));
    // The rendered timeline mentions every VM.
    let text: String = events.iter().map(|e| e.describe() + "\n").collect();
    assert!(text.contains(&a.to_string()) && text.contains(&b.to_string()));
}
