//! Cross-crate integration tests: the full detection pipeline from
//! workload catalog through simulator, probes, recommender, and detector.

use bolt::detector::{Detector, DetectorConfig};
use bolt::experiment::{observe_through, observed_training};
use bolt_recommender::{HybridRecommender, RecommenderConfig, TrainingData};
use bolt_sim::vm::VmRole;
use bolt_sim::{Cluster, IsolationConfig, ServerSpec, VmId};
use bolt_workloads::{catalog, training::training_set, PressureVector, WorkloadProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn detector(isolation: &IsolationConfig) -> Detector {
    let data = TrainingData::from_examples(observed_training(&training_set(7), isolation))
        .expect("training data");
    let rec = HybridRecommender::fit(data, RecommenderConfig::default()).expect("fit");
    Detector::new(rec, DetectorConfig::default())
}

fn host_with(victims: Vec<WorkloadProfile>, rng: &mut StdRng) -> (Cluster, VmId) {
    let isolation = IsolationConfig::cloud_default();
    let mut cluster = Cluster::new(1, ServerSpec::xeon(), isolation).expect("cluster");
    let adv = cluster
        .launch_on(
            0,
            catalog::memcached::profile(&catalog::memcached::Variant::Mixed, rng).with_vcpus(4),
            VmRole::Adversarial,
            0.0,
        )
        .expect("adversary placed");
    cluster
        .set_pressure_override(adv, Some(PressureVector::zero()))
        .expect("quiet adversary");
    for v in victims {
        cluster
            .launch_on(0, v, VmRole::Friendly, 0.0)
            .expect("victim placed");
    }
    (cluster, adv)
}

#[test]
fn end_to_end_single_victim_families_detected() {
    let mut rng = StdRng::seed_from_u64(0x1771);
    let isolation = IsolationConfig::cloud_default();
    let det = detector(&isolation);
    let victims: Vec<WorkloadProfile> = vec![
        catalog::memcached::profile(&catalog::memcached::Variant::ReadHeavyKb, &mut rng)
            .with_vcpus(8),
        catalog::spark::profile(
            &catalog::spark::Algorithm::KMeans,
            bolt_workloads::DatasetScale::Large,
            &mut rng,
        )
        .with_vcpus(8),
        catalog::hadoop::profile(
            &catalog::hadoop::Algorithm::WordCount,
            bolt_workloads::DatasetScale::Large,
            &mut rng,
        )
        .with_vcpus(8),
        catalog::webserver::profile(&catalog::webserver::Variant::Proxy, &mut rng).with_vcpus(8),
    ];
    let mut hits = 0;
    let total = victims.len();
    for victim in victims {
        let truth = victim.label().clone();
        let (cluster, adv) = host_with(vec![victim], &mut rng);
        let (d, _) = det
            .detect_until(&cluster, adv, 0.0, |d| d.matches_family(&truth), &mut rng)
            .expect("detection runs");
        hits += d.matches_family(&truth) as usize;
    }
    assert!(
        hits >= total - 1,
        "single-victim family detection should be near-perfect: {hits}/{total}"
    );
}

#[test]
fn end_to_end_two_victims_both_usually_found() {
    let mut rng = StdRng::seed_from_u64(0x2772);
    let isolation = IsolationConfig::cloud_default();
    let det = detector(&isolation);
    // Production-sized tenants: together with the adversary they fill the
    // host, so at least one shares the adversary's physical cores. This
    // pair (cache-bound key-value store + disk-bound analytics) has
    // near-orthogonal fingerprints, so its mixture decomposes uniquely;
    // see EXPERIMENTS.md for the pairs that genuinely do not.
    let a = catalog::memcached::profile(&catalog::memcached::Variant::ReadHeavyKb, &mut rng)
        .with_vcpus(6);
    let b = catalog::hadoop::profile(
        &catalog::hadoop::Algorithm::WordCount,
        bolt_workloads::DatasetScale::Large,
        &mut rng,
    )
    .with_vcpus(6);
    let truth_a = a.label().clone();
    let truth_b = b.label().clone();
    let (cluster, adv) = host_with(vec![a, b], &mut rng);
    // Each victim must be found within a handful of iterations, chaining
    // each iteration's sweep as the next one's differencing baseline.
    let mut found_a = false;
    let mut found_b = false;
    let mut baseline: Option<Vec<(bolt_workloads::Resource, f64)>> = None;
    for i in 0..6 {
        let d = det
            .detect_with_baseline(
                &cluster,
                adv,
                i as f64 * 20.0,
                baseline.as_deref(),
                &mut rng,
            )
            .expect("detect");
        found_a |= d.matches_family(&truth_a);
        found_b |= d.matches_family(&truth_b);
        if !d.sweep.is_empty() {
            baseline = Some(d.sweep.clone());
        }
    }
    assert!(found_a, "memcached victim never identified");
    assert!(found_b, "hadoop victim never identified");
}

#[test]
fn characteristics_survive_unseen_applications() {
    // An application family absent from the training set cannot be named,
    // but its resource characteristics still match a trained neighbour.
    let mut rng = StdRng::seed_from_u64(0x3773);
    let isolation = IsolationConfig::cloud_default();
    let det = detector(&isolation);
    let unseen = catalog::userstudy::profile(catalog::userstudy::app(9), &mut rng) // MLPython
        .with_vcpus(8);
    let truth_chars = bolt_workloads::ResourceCharacteristics::from_pressure(&observe_through(
        unseen.base_pressure(),
        &isolation,
    ));
    let truth_label = unseen.label().clone();
    let (cluster, adv) = host_with(vec![unseen], &mut rng);
    let mut characterized = false;
    let mut named = false;
    for i in 0..6 {
        let d = det
            .detect(&cluster, adv, i as f64 * 20.0, &mut rng)
            .expect("detect");
        characterized |= d.matches_characteristics(&truth_chars);
        named |= d.matches_family(&truth_label);
    }
    assert!(
        !named,
        "mlpython is not in the training set and cannot be named"
    );
    assert!(characterized, "characteristics should still be recovered");
}

#[test]
fn isolation_reduces_what_the_probes_see() {
    // The same host under progressively stronger isolation exposes less
    // interference to the adversary's probes.
    let mut rng = StdRng::seed_from_u64(0x4774);
    let victim = catalog::spark::profile(
        &catalog::spark::Algorithm::KMeans,
        bolt_workloads::DatasetScale::Large,
        &mut rng,
    )
    .with_vcpus(8);

    let visible_total = |isolation: IsolationConfig, rng: &mut StdRng| -> f64 {
        let mut cluster = Cluster::new(1, ServerSpec::xeon(), isolation).expect("cluster");
        let adv = cluster
            .launch_on(
                0,
                catalog::memcached::profile(&catalog::memcached::Variant::Mixed, rng).with_vcpus(4),
                VmRole::Adversarial,
                0.0,
            )
            .expect("adversary");
        cluster
            .set_pressure_override(adv, Some(PressureVector::zero()))
            .expect("quiet");
        cluster
            .launch_on(0, victim.clone(), VmRole::Friendly, 0.0)
            .expect("victim");
        cluster
            .interference_on(adv, 30.0, rng)
            .expect("interference")
            .total()
    };

    let none = visible_total(IsolationConfig::cloud_default(), &mut rng);
    let full = visible_total(
        IsolationConfig {
            setting: bolt_sim::OsSetting::VirtualMachines,
            mechanisms: bolt_sim::Mechanisms {
                thread_pinning: true,
                net_bw_partitioning: true,
                mem_bw_partitioning: true,
                cache_partitioning: true,
                core_isolation: false,
            },
        },
        &mut rng,
    );
    let core = visible_total(
        IsolationConfig {
            setting: bolt_sim::OsSetting::VirtualMachines,
            mechanisms: bolt_sim::Mechanisms {
                thread_pinning: true,
                net_bw_partitioning: true,
                mem_bw_partitioning: true,
                cache_partitioning: true,
                core_isolation: true,
            },
        },
        &mut rng,
    );
    assert!(
        full < none,
        "the mechanism stack must hide pressure: {none} -> {full}"
    );
    assert!(
        core <= full,
        "core isolation must hide still more: {full} -> {core}"
    );
}

#[test]
fn detection_is_deterministic_for_fixed_seeds() {
    let isolation = IsolationConfig::cloud_default();
    let det = detector(&isolation);
    let run = || {
        let mut rng = StdRng::seed_from_u64(0x5775);
        let victim = catalog::cassandra::profile(&catalog::cassandra::Variant::Mixed, &mut rng)
            .with_vcpus(8);
        let (cluster, adv) = host_with(vec![victim], &mut rng);
        let d = det.detect(&cluster, adv, 42.0, &mut rng).expect("detect");
        d.labels().map(ToString::to_string).collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
