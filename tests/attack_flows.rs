//! Cross-crate integration tests for the §5 attack flows: detection feeds
//! attack crafting feeds simulated impact.

use bolt::attacks::coresidency::{hunt, CoResidencyConfig};
use bolt::attacks::dos::{craft_attack, naive_attack, run_dos, DosRunConfig};
use bolt::attacks::rfa::run_rfa;
use bolt::detector::{Detector, DetectorConfig};
use bolt::experiment::observed_training;
use bolt_recommender::{HybridRecommender, RecommenderConfig, TrainingData};
use bolt_sim::vm::VmRole;
use bolt_sim::{Cluster, IsolationConfig, ServerSpec};
use bolt_workloads::{catalog, training::training_set, LoadPattern, PressureVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn detector(isolation: &IsolationConfig) -> Detector {
    let data = TrainingData::from_examples(observed_training(&training_set(7), isolation))
        .expect("training data");
    let rec = HybridRecommender::fit(data, RecommenderConfig::default()).expect("fit");
    Detector::new(rec, DetectorConfig::default())
}

#[test]
fn detect_then_dos_end_to_end() {
    // The full §5.1 loop: land next to a victim, detect it, craft the
    // attack from the *detected* profile, and degrade it without tripping
    // the migration monitor.
    let mut rng = StdRng::seed_from_u64(0xA77A);
    let isolation = IsolationConfig::cloud_default();
    let det = detector(&isolation);

    let mut cluster = Cluster::new(4, ServerSpec::xeon(), isolation).expect("cluster");
    let victim_profile =
        catalog::memcached::profile(&catalog::memcached::Variant::ReadHeavyKb, &mut rng)
            .with_vcpus(12)
            .with_load(LoadPattern::Constant { level: 0.7 });
    let baseline = victim_profile.base_latency_ms();
    let victim = cluster
        .launch_on(0, victim_profile, VmRole::Friendly, 0.0)
        .expect("victim placed");
    let attacker = cluster
        .launch_on(
            0,
            catalog::memcached::profile(&catalog::memcached::Variant::Mixed, &mut rng)
                .with_vcpus(4),
            VmRole::Adversarial,
            0.0,
        )
        .expect("attacker placed");
    cluster
        .set_pressure_override(attacker, Some(PressureVector::zero()))
        .expect("quiet attacker");

    let detection = det
        .detect(&cluster, attacker, 15.0, &mut rng)
        .expect("detect");
    let primary = detection.primary().expect("victim detected");
    let attack = craft_attack(primary);

    let timeline = run_dos(
        &mut cluster,
        attacker,
        victim,
        attack,
        &DosRunConfig::default(),
        &mut rng,
    )
    .expect("dos runs");
    assert!(
        timeline.migration_at.is_none(),
        "the crafted attack must stay below the migration trigger"
    );
    assert!(
        timeline.final_amplification(baseline) > 3.0,
        "the crafted attack must keep hurting: {:.1}x",
        timeline.final_amplification(baseline)
    );
}

#[test]
fn naive_dos_is_defeated_by_migration() {
    let mut rng = StdRng::seed_from_u64(0xB77B);
    let mut cluster =
        Cluster::new(4, ServerSpec::xeon(), IsolationConfig::cloud_default()).expect("cluster");
    let victim_profile =
        catalog::memcached::profile(&catalog::memcached::Variant::ReadHeavyKb, &mut rng)
            .with_vcpus(12)
            .with_load(LoadPattern::Constant { level: 0.7 });
    let baseline = victim_profile.base_latency_ms();
    let victim = cluster
        .launch_on(0, victim_profile, VmRole::Friendly, 0.0)
        .expect("victim placed");
    let attacker = cluster
        .launch_on(
            0,
            catalog::memcached::profile(&catalog::memcached::Variant::Mixed, &mut rng)
                .with_vcpus(4),
            VmRole::Adversarial,
            0.0,
        )
        .expect("attacker placed");
    let timeline = run_dos(
        &mut cluster,
        attacker,
        victim,
        naive_attack(),
        &DosRunConfig::default(),
        &mut rng,
    )
    .expect("dos runs");
    assert!(
        timeline.migration_at.is_some(),
        "naive DoS must trip the monitor"
    );
    assert!(
        timeline.final_amplification(baseline) < 2.0,
        "the migrated victim must recover"
    );
}

#[test]
fn rfa_all_three_paper_victims() {
    let mut rng = StdRng::seed_from_u64(0xC77C);
    let victims = vec![
        catalog::webserver::profile(&catalog::webserver::Variant::Dynamic, &mut rng).with_vcpus(8),
        catalog::hadoop::profile(
            &catalog::hadoop::Algorithm::Svm,
            bolt_workloads::DatasetScale::Large,
            &mut rng,
        )
        .with_vcpus(8),
        catalog::spark::profile(
            &catalog::spark::Algorithm::KMeans,
            bolt_workloads::DatasetScale::Large,
            &mut rng,
        )
        .with_vcpus(8),
    ];
    for victim in victims {
        let name = victim.label().to_string();
        let mut cluster =
            Cluster::new(1, ServerSpec::xeon(), IsolationConfig::cloud_default()).expect("cluster");
        let beneficiary = catalog::speccpu::profile(&catalog::speccpu::Benchmark::Mcf, &mut rng);
        let outcome = run_rfa(&mut cluster, 0, victim, beneficiary, &mut rng).expect("rfa");
        assert!(
            outcome.victim_delta < -0.1,
            "{name}: victim should degrade, got {:+.2}",
            outcome.victim_delta
        );
        assert!(
            outcome.beneficiary_delta > 0.0,
            "{name}: mcf should improve, got {:+.2}",
            outcome.beneficiary_delta
        );
    }
}

#[test]
fn coresidency_hunt_eventually_confirms() {
    let mut rng = StdRng::seed_from_u64(0xD77D);
    let isolation = IsolationConfig::cloud_default();
    let mut cluster = Cluster::new(12, ServerSpec::xeon(), isolation).expect("cluster");
    let victim = cluster
        .launch_on(
            5,
            catalog::database::profile(&catalog::database::Variant::SqlOltp, &mut rng)
                .with_vcpus(8),
            VmRole::Friendly,
            0.0,
        )
        .expect("victim placed");
    for s in [1, 8] {
        let decoy = catalog::database::profile(&catalog::database::Variant::SqlOltp, &mut rng)
            .with_vcpus(8);
        cluster
            .launch_on(s, decoy, VmRole::Friendly, 0.0)
            .expect("decoy placed");
    }
    let det = detector(&isolation);
    let config = CoResidencyConfig {
        probes: 12,
        ..CoResidencyConfig::default()
    };
    let mut confirmed = None;
    for round in 0..6 {
        let outcome = hunt(
            &mut cluster,
            &det,
            victim,
            "mysql",
            &config,
            round as f64 * 150.0,
            &mut rng,
        )
        .expect("hunt runs");
        if let Some(server) = outcome.confirmed_server {
            confirmed = Some(server);
            break;
        }
    }
    assert_eq!(
        confirmed,
        Some(5),
        "the hunt must pinpoint the victim's host"
    );
}
