//! `bolt-repro` — the command-line driver for the Bolt reproduction.
//!
//! A thin argument-parsed front end over the library crates, so every
//! experiment can be run (and re-parameterized) without writing Rust:
//!
//! ```text
//! bolt-repro detect   [--servers N] [--victims N] [--seed S]
//! bolt-repro table1   [--servers N] [--victims N]
//! bolt-repro study    [--instances N] [--jobs N]
//! bolt-repro isolation [--servers N] [--victims N]
//! bolt-repro dos | rfa | coresidency
//! ```
//!
//! Dependencies are deliberately std-only: arguments are parsed by hand.

use std::collections::HashMap;
use std::process::ExitCode;

use bolt::attacks::coresidency::{hunt, placement_probability, CoResidencyConfig};
use bolt::attacks::dos::{craft_attack_from_profile, naive_attack, run_dos, DosRunConfig};
use bolt::attacks::rfa::run_rfa;
use bolt::experiment::{run_experiment, ExperimentConfig};
use bolt::isolation_study::run_isolation_study;
use bolt::report::{pct, Table};
use bolt::user_study::{run_user_study, UserStudyConfig};
use bolt_sim::{LeastLoaded, OsSetting, Quasar};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let result = match command.as_str() {
        "detect" => cmd_detect(&flags),
        "table1" => cmd_table1(&flags),
        "study" => cmd_study(&flags),
        "isolation" => cmd_isolation(&flags),
        "dos" => cmd_dos(&flags),
        "rfa" => cmd_rfa(&flags),
        "coresidency" => cmd_coresidency(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
bolt-repro — reproduction driver for Bolt (ASPLOS 2017)

USAGE:
    bolt-repro <COMMAND> [--flag value]...

COMMANDS:
    detect        run the controlled detection experiment and print per-victim rows
    table1        Table 1: accuracy per class, least-loaded vs Quasar scheduler
    study         the EC2 multi-user study (Figs. 11-12)
    isolation     the isolation sweep (Fig. 14)
    dos           the targeted-vs-naive DoS timeline (Fig. 13)
    rfa           the resource-freeing attacks (Table 2)
    coresidency   locate a SQL victim in the cluster (Sec. 5.3)

FLAGS (all optional):
    --servers N    cluster size            (default 20)
    --victims N    victim workloads        (default 48)
    --instances N  user-study instances    (default 40)
    --jobs N       user-study jobs         (default 120)
    --seed S       RNG seed                (default experiment-specific)";

fn parse_flags(
    args: impl Iterator<Item = String>,
) -> Result<HashMap<String, u64>, String> {
    let mut flags = HashMap::new();
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("expected a --flag, got `{flag}`"));
        };
        let Some(value) = args.next() else {
            return Err(format!("--{name} needs a value"));
        };
        let value: u64 = value
            .parse()
            .map_err(|_| format!("--{name} needs an integer, got `{value}`"))?;
        flags.insert(name.to_string(), value);
    }
    Ok(flags)
}

fn experiment_config(flags: &HashMap<String, u64>) -> ExperimentConfig {
    let mut config = ExperimentConfig {
        servers: flags.get("servers").copied().unwrap_or(20) as usize,
        victims: flags.get("victims").copied().unwrap_or(48) as usize,
        ..ExperimentConfig::default()
    };
    if let Some(&seed) = flags.get("seed") {
        config.seed = seed;
    }
    config
}

fn cmd_detect(flags: &HashMap<String, u64>) -> Result<(), String> {
    let config = experiment_config(flags);
    eprintln!(
        "running the controlled experiment: {} victims on {} servers...",
        config.victims, config.servers
    );
    let results = run_experiment(&config, &LeastLoaded).map_err(|e| e.to_string())?;
    let mut table = Table::new(vec!["victim", "detected", "iters", "co-res", "label", "chars"]);
    for r in &results.records {
        table.row(vec![
            r.truth.to_string(),
            r.detected
                .as_ref()
                .map(ToString::to_string)
                .unwrap_or_else(|| "(none)".into()),
            r.iterations.to_string(),
            r.co_residents.to_string(),
            if r.label_correct { "ok" } else { "-" }.into(),
            if r.characteristics_correct { "ok" } else { "-" }.into(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "label accuracy {}  characteristics accuracy {}",
        pct(results.label_accuracy()),
        pct(results.characteristics_accuracy())
    );
    Ok(())
}

fn cmd_table1(flags: &HashMap<String, u64>) -> Result<(), String> {
    let config = experiment_config(flags);
    eprintln!("running the controlled experiment twice (LL, Quasar)...");
    let ll = run_experiment(&config, &LeastLoaded).map_err(|e| e.to_string())?;
    let quasar = run_experiment(&config, &Quasar).map_err(|e| e.to_string())?;
    let mut table = Table::new(vec!["class", "LL", "Quasar"]);
    table.row(vec![
        "aggregate".into(),
        pct(ll.label_accuracy()),
        pct(quasar.label_accuracy()),
    ]);
    for family in ["memcached", "hadoop", "spark", "cassandra", "speccpu2006"] {
        table.row(vec![
            family.into(),
            ll.family_accuracy(family).map(pct).unwrap_or_else(|| "-".into()),
            quasar
                .family_accuracy(family)
                .map(pct)
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}

fn cmd_study(flags: &HashMap<String, u64>) -> Result<(), String> {
    let mut config = UserStudyConfig {
        instances: flags.get("instances").copied().unwrap_or(40) as usize,
        jobs: flags.get("jobs").copied().unwrap_or(120) as usize,
        users: 10,
        ..UserStudyConfig::default()
    };
    if let Some(&seed) = flags.get("seed") {
        config.seed = seed;
    }
    eprintln!(
        "running the user study: {} jobs on {} instances...",
        config.jobs, config.instances
    );
    let results = run_user_study(&config).map_err(|e| e.to_string())?;
    let n = results.records.len();
    println!(
        "named {}/{} ({})  characterized {}/{} ({})  instances used {}/{}",
        results.named(),
        n,
        pct(results.named() as f64 / n.max(1) as f64),
        results.characterized(),
        n,
        pct(results.characterized() as f64 / n.max(1) as f64),
        results.instances_used,
        config.instances
    );
    Ok(())
}

fn cmd_isolation(flags: &HashMap<String, u64>) -> Result<(), String> {
    let config = ExperimentConfig {
        servers: flags.get("servers").copied().unwrap_or(10) as usize,
        victims: flags.get("victims").copied().unwrap_or(24) as usize,
        ..ExperimentConfig::default()
    };
    eprintln!("running 21 detection experiments (3 settings x 7 stacks)...");
    let study = run_isolation_study(&config).map_err(|e| e.to_string())?;
    let mut table = Table::new(vec!["stack", "baremetal", "containers", "VMs"]);
    let stacks = [
        "none",
        "thread pinning",
        "+net bw partitioning",
        "+mem bw partitioning",
        "+cache partitioning",
        "+core isolation",
    ];
    for (i, stack) in stacks.iter().enumerate() {
        let mut row = vec![stack.to_string()];
        for setting in OsSetting::ALL {
            row.push(study.accuracy(setting, i).map(pct).unwrap_or_else(|| "-".into()));
        }
        table.row(row);
    }
    println!("{}", table.render());
    Ok(())
}

fn cmd_dos(flags: &HashMap<String, u64>) -> Result<(), String> {
    use bolt_sim::vm::VmRole;
    use bolt_sim::{Cluster, IsolationConfig, ServerSpec};
    use bolt_workloads::{catalog, LoadPattern, PressureVector};

    let seed = flags.get("seed").copied().unwrap_or(0xD05);
    let mut rng = StdRng::seed_from_u64(seed);
    let scene = |rng: &mut StdRng| -> Result<_, String> {
        let mut cluster = Cluster::new(4, ServerSpec::xeon(), IsolationConfig::cloud_default())
            .map_err(|e| e.to_string())?;
        let victim_profile =
            catalog::memcached::profile(&catalog::memcached::Variant::ReadHeavyKb, rng)
                .with_vcpus(12)
                .with_load(LoadPattern::Constant { level: 0.7 });
        let baseline = victim_profile.base_latency_ms();
        let victim = cluster
            .launch_on(0, victim_profile, VmRole::Friendly, 0.0)
            .map_err(|e| e.to_string())?;
        let attacker = cluster
            .launch_on(
                0,
                catalog::memcached::profile(&catalog::memcached::Variant::Mixed, rng)
                    .with_vcpus(4),
                VmRole::Adversarial,
                0.0,
            )
            .map_err(|e| e.to_string())?;
        cluster
            .set_pressure_override(attacker, Some(PressureVector::zero()))
            .map_err(|e| e.to_string())?;
        Ok((cluster, attacker, victim, baseline))
    };

    let defense = DosRunConfig::default();
    let (mut c1, a1, v1, baseline) = scene(&mut rng)?;
    let pressure = *c1
        .vm(v1)
        .map_err(|e| e.to_string())?
        .profile
        .base_pressure();
    let bolt = run_dos(
        &mut c1,
        a1,
        v1,
        craft_attack_from_profile(&pressure),
        &defense,
        &mut rng,
    )
    .map_err(|e| e.to_string())?;
    let (mut c2, a2, v2, _) = scene(&mut rng)?;
    let naive = run_dos(&mut c2, a2, v2, naive_attack(), &defense, &mut rng)
        .map_err(|e| e.to_string())?;
    println!(
        "bolt:  {:>5.0}x steady-state amplification, migration: {:?}",
        bolt.final_amplification(baseline),
        bolt.migration_at
    );
    println!(
        "naive: {:>5.0}x steady-state amplification, migration: {:?}",
        naive.final_amplification(baseline),
        naive.migration_at
    );
    Ok(())
}

fn cmd_rfa(flags: &HashMap<String, u64>) -> Result<(), String> {
    use bolt_sim::{Cluster, IsolationConfig, ServerSpec};
    use bolt_workloads::{catalog, DatasetScale};

    let seed = flags.get("seed").copied().unwrap_or(0x2FA);
    let mut rng = StdRng::seed_from_u64(seed);
    let victims = vec![
        catalog::webserver::profile(&catalog::webserver::Variant::Dynamic, &mut rng)
            .with_vcpus(8),
        catalog::hadoop::profile(&catalog::hadoop::Algorithm::Svm, DatasetScale::Large, &mut rng)
            .with_vcpus(8),
        catalog::spark::profile(&catalog::spark::Algorithm::KMeans, DatasetScale::Large, &mut rng)
            .with_vcpus(8),
    ];
    let mut table = Table::new(vec!["victim", "victim perf", "mcf", "target"]);
    for victim in victims {
        let name = victim.label().to_string();
        let mut cluster = Cluster::new(1, ServerSpec::xeon(), IsolationConfig::cloud_default())
            .map_err(|e| e.to_string())?;
        let mcf = catalog::speccpu::profile(&catalog::speccpu::Benchmark::Mcf, &mut rng);
        let outcome = run_rfa(&mut cluster, 0, victim, mcf, &mut rng)
            .map_err(|e| e.to_string())?;
        table.row(vec![
            name,
            format!("{:+.0}%", outcome.victim_delta * 100.0),
            format!("{:+.0}%", outcome.beneficiary_delta * 100.0),
            outcome.target_resource.to_string(),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}

fn cmd_coresidency(flags: &HashMap<String, u64>) -> Result<(), String> {
    use bolt::detector::{Detector, DetectorConfig};
    use bolt::experiment::observed_training;
    use bolt_recommender::{HybridRecommender, RecommenderConfig, TrainingData};
    use bolt_sim::vm::VmRole;
    use bolt_sim::{Cluster, IsolationConfig, ServerSpec};
    use bolt_workloads::{catalog, training::training_set, DatasetScale};

    let servers = flags.get("servers").copied().unwrap_or(40) as usize;
    let seed = flags.get("seed").copied().unwrap_or(0xC0DE);
    let mut rng = StdRng::seed_from_u64(seed);
    let isolation = IsolationConfig::cloud_default();
    let mut cluster =
        Cluster::new(servers, ServerSpec::xeon(), isolation).map_err(|e| e.to_string())?;
    let victim_host = servers / 4 + 1;
    let victim = cluster
        .launch_on(
            victim_host,
            catalog::database::profile(&catalog::database::Variant::SqlOltp, &mut rng)
                .with_vcpus(8),
            VmRole::Friendly,
            0.0,
        )
        .map_err(|e| e.to_string())?;
    for s in (0..servers).step_by(5).take(7) {
        if s == victim_host {
            continue;
        }
        let p = catalog::database::profile(&catalog::database::Variant::SqlOltp, &mut rng)
            .with_vcpus(8);
        let _ = cluster.launch_on(s, p, VmRole::Friendly, 0.0);
    }
    for s in (2..servers).step_by(4).take(10) {
        if s == victim_host {
            // Leave headroom next to the victim: an instance-packed host
            // can never receive a probe (nor any other new tenant).
            continue;
        }
        let p = catalog::spark::profile(
            &catalog::spark::Algorithm::KMeans,
            DatasetScale::Medium,
            &mut rng,
        )
        .with_vcpus(8);
        let _ = cluster.launch_on(s, p, VmRole::Friendly, 0.0);
    }

    let data = TrainingData::from_examples(observed_training(&training_set(7), &isolation))
        .map_err(|e| e.to_string())?;
    let rec = HybridRecommender::fit(data, RecommenderConfig::default())
        .map_err(|e| e.to_string())?;
    let detector = Detector::new(rec, DetectorConfig::default());
    let config = CoResidencyConfig::default();
    println!(
        "hunting a SQL victim across {servers} servers; P(per fleet) = {:.2}",
        placement_probability(servers, 1, config.probes)
    );
    for round in 0..10 {
        let outcome = hunt(
            &mut cluster,
            &detector,
            victim,
            "mysql",
            &config,
            round as f64 * 120.0,
            &mut rng,
        )
        .map_err(|e| e.to_string())?;
        println!(
            "fleet {round}: probed {:?}, SQL candidates {:?}",
            outcome.probed_servers, outcome.candidate_servers
        );
        if let Some(server) = outcome.confirmed_server {
            println!(
                "confirmed on server {server} (truth: {victim_host}) with a {:.1}x latency jump",
                outcome.latency_ratio()
            );
            return Ok(());
        }
    }
    println!("not located within the fleet budget — relaunch with another --seed");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::parse_flags;

    #[test]
    fn parse_flags_accepts_pairs() {
        let flags = parse_flags(
            ["--servers", "12", "--victims", "30"].iter().map(|s| s.to_string()),
        )
        .expect("valid flags");
        assert_eq!(flags.get("servers"), Some(&12));
        assert_eq!(flags.get("victims"), Some(&30));
    }

    #[test]
    fn parse_flags_rejects_bare_values_and_missing_values() {
        assert!(parse_flags(["12".to_string()].into_iter()).is_err());
        assert!(parse_flags(["--seed".to_string()].into_iter()).is_err());
        assert!(
            parse_flags(["--seed".to_string(), "abc".to_string()].into_iter()).is_err()
        );
    }
}
