//! `bolt-repro` — the command-line driver for the Bolt reproduction.
//!
//! A thin argument-parsed front end over the library crates, so every
//! experiment can be run (and re-parameterized) without writing Rust:
//!
//! ```text
//! bolt-repro detect   [--servers N] [--victims N] [--seed S]
//! bolt-repro table1   [--servers N] [--victims N]
//! bolt-repro study    [--instances N] [--jobs N]
//! bolt-repro isolation [--servers N] [--victims N]
//! bolt-repro dos | rfa | coresidency
//! bolt-repro robustness [--servers N] [--victims N] [--seed S]
//! ```
//!
//! Dependencies are deliberately std-only: arguments are parsed by hand.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

use bolt::attacks::coresidency::{hunt_telemetry, placement_probability, CoResidencyConfig};
use bolt::attacks::dos::{
    craft_attack_from_profile, naive_attack, run_dos_telemetry, DosRunConfig,
};
use bolt::attacks::rfa::run_rfa_telemetry;
use bolt::experiment::{run_experiment_cache, run_experiment_cache_telemetry, ExperimentConfig};
use bolt::isolation_study::{run_isolation_study_cache, run_isolation_study_cache_telemetry};
use bolt::report::{pct, Table};
use bolt::telemetry::{Telemetry, TelemetryLog};
use bolt::user_study::{run_user_study_cache, run_user_study_cache_telemetry, UserStudyConfig};
use bolt::FitCache;
use bolt_sim::{LeastLoaded, OsSetting, Quasar};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let result = match command.as_str() {
        "detect" => cmd_detect(&flags),
        "table1" => cmd_table1(&flags),
        "study" => cmd_study(&flags),
        "isolation" => cmd_isolation(&flags),
        "dos" => cmd_dos(&flags),
        "rfa" => cmd_rfa(&flags),
        "coresidency" => cmd_coresidency(&flags),
        "robustness" => cmd_robustness(&flags),
        "region" => cmd_region(&flags),
        "serve" => cmd_serve(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
bolt-repro — reproduction driver for Bolt (ASPLOS 2017)

USAGE:
    bolt-repro <COMMAND> [--flag value]...

COMMANDS:
    detect        run the controlled detection experiment and print per-victim rows
    table1        Table 1: accuracy per class, least-loaded vs Quasar scheduler
    study         the EC2 multi-user study (Figs. 11-12)
    isolation     the isolation sweep (Fig. 14)
    dos           the targeted-vs-naive DoS timeline (Fig. 13)
    rfa           the resource-freeing attacks (Table 2)
    coresidency   locate a SQL victim in the cluster (Sec. 5.3)
    robustness    detection accuracy and graceful degradation under churn
    region        region-scale stress: thousands of hosts under churn + probing
    serve         streaming detection service: admission control, deadlines,
                  circuit breakers, replayable request storms

FLAGS (all optional):
    --servers N       cluster size            (default 20)
    --victims N       victim workloads        (default 48)
    --instances N     user-study instances    (default 40)
    --jobs N          user-study jobs         (default 120)
    --vms-per-server N  region tenants per host (default 10)
    --steps N         region simulation steps (default 20)
    --seed S          RNG seed                (default experiment-specific)
    --mrc             enable the miss-rate-curve detection channel (default off)
    --anytime         enable the anytime iterative-deepening window (default off)
    --confidence-threshold X  anytime early-exit confidence (default 0.7)
    --no-fit-cache    retrain the recommender at every use instead of caching fits
    --requests N      service requests in the base trace      (default 200)
    --rate X          service arrivals per simulated minute   (default 2.0)
    --workers N       service probe-worker lanes              (default 3)
    --queue-cap N     service admission-queue capacity        (default 6)
    --deadline X      per-request deadline, simulated seconds (default 240)
    --shed POLICY     overload response: degrade | reject     (default degrade)
    --storm X         storm-injector intensity in [0,1]       (default 0)
    --chaos-intensity X  cluster-churn intensity in [0,1]     (default 0)
    --threads N       worker-lane thread fan-out (byte-identical at any N)
    --warm-refit      seed recommender refits from cached same-config models
    --region          serve against a region-scale cluster (zero-noise region
                      tenants, shared sweep memo, duplicate co-arrivals)
    --telemetry PATH  write a JSONL telemetry trace of the run to PATH";

/// Flags that take no value: `--mrc` alone means `--mrc true`, while an
/// explicit `--mrc false` (or `=false`) still parses.
const BOOLEAN_FLAGS: [&str; 5] = ["mrc", "anytime", "no-fit-cache", "warm-refit", "region"];

/// Parsed `--flag value` pairs (also accepts `--flag=value`). Values stay
/// strings until a command asks for them, so path-valued flags like
/// `--telemetry` coexist with the numeric ones.
struct Flags(HashMap<String, String>);

impl Flags {
    /// The flag as an integer, if present.
    fn u64(&self, name: &str) -> Result<Option<u64>, String> {
        self.0
            .get(name)
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("--{name} needs an integer, got `{v}`"))
            })
            .transpose()
    }

    /// The flag as a count, with a default.
    fn usize(&self, name: &str, default: usize) -> Result<usize, String> {
        Ok(self.u64(name)?.map(|v| v as usize).unwrap_or(default))
    }

    /// The flag as a float, if present.
    fn f64(&self, name: &str) -> Result<Option<f64>, String> {
        self.0
            .get(name)
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("--{name} needs a number, got `{v}`"))
            })
            .transpose()
    }

    /// The flag as a boolean, defaulting to `false` when absent.
    fn bool(&self, name: &str) -> Result<bool, String> {
        self.0
            .get(name)
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("--{name} needs true or false, got `{v}`"))
            })
            .transpose()
            .map(|v| v.unwrap_or(false))
    }

    /// The `--telemetry` output path, if requested.
    fn telemetry(&self) -> Option<PathBuf> {
        self.0.get("telemetry").map(PathBuf::from)
    }

    /// The run's fit cache: shared across every fit of the command unless
    /// `--no-fit-cache` asked for honest retrains.
    fn fit_cache(&self) -> Result<FitCache, String> {
        Ok(if self.bool("no-fit-cache")? {
            FitCache::disabled()
        } else {
            FitCache::new()
        })
    }
}

fn parse_flags(args: impl Iterator<Item = String>) -> Result<Flags, String> {
    let mut flags = HashMap::new();
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("expected a --flag, got `{flag}`"));
        };
        let (name, value) = match name.split_once('=') {
            Some((name, value)) => (name.to_string(), value.to_string()),
            None if BOOLEAN_FLAGS.contains(&name)
                && args.peek().is_none_or(|next| next.starts_with("--")) =>
            {
                // A bare boolean flag: the next token (if any) is another
                // flag, so this one means "true".
                (name.to_string(), "true".to_string())
            }
            None => {
                let Some(value) = args.next() else {
                    return Err(format!("--{name} needs a value"));
                };
                (name.to_string(), value)
            }
        };
        flags.insert(name, value);
    }
    Ok(Flags(flags))
}

/// Writes the run's telemetry trace when `--telemetry` was given, with a
/// per-metric summary on stderr.
fn write_telemetry(flags: &Flags, log: &TelemetryLog) -> Result<(), String> {
    let Some(path) = flags.telemetry() else {
        return Ok(());
    };
    log.write_jsonl(&path)
        .map_err(|e| format!("writing {}: {e}", path.display()))?;
    eprintln!("telemetry: {} events -> {}", log.len(), path.display());
    eprintln!("{}", log.summary_table().render());
    Ok(())
}

fn experiment_config(flags: &Flags) -> Result<ExperimentConfig, String> {
    let mut config = ExperimentConfig {
        servers: flags.usize("servers", 20)?,
        victims: flags.usize("victims", 48)?,
        mrc_channel: flags.bool("mrc")?,
        anytime: flags.bool("anytime")?,
        ..ExperimentConfig::default()
    };
    if let Some(seed) = flags.u64("seed")? {
        config.seed = seed;
    }
    if let Some(threshold) = flags.f64("confidence-threshold")? {
        config.detector.confidence_threshold = threshold;
    }
    Ok(config)
}

fn cmd_detect(flags: &Flags) -> Result<(), String> {
    let config = experiment_config(flags)?;
    eprintln!(
        "running the controlled experiment: {} victims on {} servers...",
        config.victims, config.servers
    );
    let cache = flags.fit_cache()?;
    let (results, log) = if flags.telemetry().is_some() {
        run_experiment_cache_telemetry(&config, &LeastLoaded, &cache).map_err(|e| e.to_string())?
    } else {
        let results =
            run_experiment_cache(&config, &LeastLoaded, &cache).map_err(|e| e.to_string())?;
        (results, TelemetryLog::new())
    };
    let mut table = Table::new(vec![
        "victim", "detected", "iters", "co-res", "label", "chars",
    ]);
    for r in &results.records {
        table.row(vec![
            r.truth.to_string(),
            r.detected
                .as_ref()
                .map(ToString::to_string)
                .unwrap_or_else(|| "(none)".into()),
            r.iterations.to_string(),
            r.co_residents.to_string(),
            if r.label_correct { "ok" } else { "-" }.into(),
            if r.characteristics_correct { "ok" } else { "-" }.into(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "label accuracy {}  characteristics accuracy {}",
        pct(results.label_accuracy()),
        pct(results.characteristics_accuracy())
    );
    write_telemetry(flags, &log)?;
    Ok(())
}

fn cmd_table1(flags: &Flags) -> Result<(), String> {
    let config = experiment_config(flags)?;
    eprintln!("running the controlled experiment twice (LL, Quasar)...");
    // Both schedulers see the same cluster physics, so one cache means the
    // recommender is trained once and the Quasar run reuses it.
    let cache = flags.fit_cache()?;
    let (ll, quasar, log) = if flags.telemetry().is_some() {
        let (ll, mut log) = run_experiment_cache_telemetry(&config, &LeastLoaded, &cache)
            .map_err(|e| e.to_string())?;
        let (quasar, quasar_log) =
            run_experiment_cache_telemetry(&config, &Quasar, &cache).map_err(|e| e.to_string())?;
        log.extend(quasar_log.into_events());
        (ll, quasar, log)
    } else {
        let ll = run_experiment_cache(&config, &LeastLoaded, &cache).map_err(|e| e.to_string())?;
        let quasar = run_experiment_cache(&config, &Quasar, &cache).map_err(|e| e.to_string())?;
        (ll, quasar, TelemetryLog::new())
    };
    let mut table = Table::new(vec!["class", "LL", "Quasar"]);
    table.row(vec![
        "aggregate".into(),
        pct(ll.label_accuracy()),
        pct(quasar.label_accuracy()),
    ]);
    for family in ["memcached", "hadoop", "spark", "cassandra", "speccpu2006"] {
        table.row(vec![
            family.into(),
            ll.family_accuracy(family)
                .map(pct)
                .unwrap_or_else(|| "-".into()),
            quasar
                .family_accuracy(family)
                .map(pct)
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("{}", table.render());
    write_telemetry(flags, &log)?;
    Ok(())
}

fn cmd_study(flags: &Flags) -> Result<(), String> {
    let mut config = UserStudyConfig {
        instances: flags.usize("instances", 40)?,
        jobs: flags.usize("jobs", 120)?,
        users: 10,
        ..UserStudyConfig::default()
    };
    if let Some(seed) = flags.u64("seed")? {
        config.seed = seed;
    }
    eprintln!(
        "running the user study: {} jobs on {} instances...",
        config.jobs, config.instances
    );
    let cache = flags.fit_cache()?;
    let (results, log) = if flags.telemetry().is_some() {
        run_user_study_cache_telemetry(&config, &cache).map_err(|e| e.to_string())?
    } else {
        let results = run_user_study_cache(&config, &cache).map_err(|e| e.to_string())?;
        (results, TelemetryLog::new())
    };
    let n = results.records.len();
    println!(
        "named {}/{} ({})  characterized {}/{} ({})  instances used {}/{}",
        results.named(),
        n,
        pct(results.named() as f64 / n.max(1) as f64),
        results.characterized(),
        n,
        pct(results.characterized() as f64 / n.max(1) as f64),
        results.instances_used,
        config.instances
    );
    write_telemetry(flags, &log)?;
    Ok(())
}

fn cmd_isolation(flags: &Flags) -> Result<(), String> {
    let config = ExperimentConfig {
        servers: flags.usize("servers", 10)?,
        victims: flags.usize("victims", 24)?,
        ..ExperimentConfig::default()
    };
    eprintln!("running 21 detection experiments (3 settings x 7 stacks)...");
    let cache = flags.fit_cache()?;
    let (study, log) = if flags.telemetry().is_some() {
        run_isolation_study_cache_telemetry(&config, &cache).map_err(|e| e.to_string())?
    } else {
        let study = run_isolation_study_cache(&config, &cache).map_err(|e| e.to_string())?;
        (study, TelemetryLog::new())
    };
    let mut table = Table::new(vec!["stack", "baremetal", "containers", "VMs"]);
    let stacks = [
        "none",
        "thread pinning",
        "+net bw partitioning",
        "+mem bw partitioning",
        "+cache partitioning",
        "+core isolation",
    ];
    for (i, stack) in stacks.iter().enumerate() {
        let mut row = vec![stack.to_string()];
        for setting in OsSetting::ALL {
            row.push(
                study
                    .accuracy(setting, i)
                    .map(pct)
                    .unwrap_or_else(|| "-".into()),
            );
        }
        table.row(row);
    }
    println!("{}", table.render());
    write_telemetry(flags, &log)?;
    Ok(())
}

fn cmd_dos(flags: &Flags) -> Result<(), String> {
    use bolt_sim::vm::VmRole;
    use bolt_sim::{Cluster, IsolationConfig, ServerSpec};
    use bolt_workloads::{catalog, LoadPattern, PressureVector};

    let seed = flags.u64("seed")?.unwrap_or(0xD05);
    let mut rng = StdRng::seed_from_u64(seed);
    let scene = |rng: &mut StdRng| -> Result<_, String> {
        let mut cluster = Cluster::new(4, ServerSpec::xeon(), IsolationConfig::cloud_default())
            .map_err(|e| e.to_string())?;
        let victim_profile =
            catalog::memcached::profile(&catalog::memcached::Variant::ReadHeavyKb, rng)
                .with_vcpus(12)
                .with_load(LoadPattern::Constant { level: 0.7 });
        let baseline = victim_profile.base_latency_ms();
        let victim = cluster
            .launch_on(0, victim_profile, VmRole::Friendly, 0.0)
            .map_err(|e| e.to_string())?;
        let attacker = cluster
            .launch_on(
                0,
                catalog::memcached::profile(&catalog::memcached::Variant::Mixed, rng).with_vcpus(4),
                VmRole::Adversarial,
                0.0,
            )
            .map_err(|e| e.to_string())?;
        cluster
            .set_pressure_override(attacker, Some(PressureVector::zero()))
            .map_err(|e| e.to_string())?;
        Ok((cluster, attacker, victim, baseline))
    };

    // Unit 1 traces the Bolt-crafted run, unit 2 the naive baseline.
    let enabled = flags.telemetry().is_some();
    let unit = |u: usize| {
        if enabled {
            Telemetry::for_unit(u)
        } else {
            Telemetry::disabled()
        }
    };
    let defense = DosRunConfig::default();
    let (mut c1, a1, v1, baseline) = scene(&mut rng)?;
    let pressure = *c1
        .vm(v1)
        .map_err(|e| e.to_string())?
        .profile
        .base_pressure();
    let mut bolt_telemetry = unit(1);
    let bolt = run_dos_telemetry(
        &mut c1,
        a1,
        v1,
        craft_attack_from_profile(&pressure),
        &defense,
        &mut rng,
        &mut bolt_telemetry,
    )
    .map_err(|e| e.to_string())?;
    let (mut c2, a2, v2, _) = scene(&mut rng)?;
    let mut naive_telemetry = unit(2);
    let naive = run_dos_telemetry(
        &mut c2,
        a2,
        v2,
        naive_attack(),
        &defense,
        &mut rng,
        &mut naive_telemetry,
    )
    .map_err(|e| e.to_string())?;
    let mut log = TelemetryLog::new();
    log.merge(bolt_telemetry);
    log.merge(naive_telemetry);
    println!(
        "bolt:  {:>5.0}x steady-state amplification, migration: {:?}",
        bolt.final_amplification(baseline),
        bolt.migration_at
    );
    println!(
        "naive: {:>5.0}x steady-state amplification, migration: {:?}",
        naive.final_amplification(baseline),
        naive.migration_at
    );
    write_telemetry(flags, &log)?;
    Ok(())
}

fn cmd_rfa(flags: &Flags) -> Result<(), String> {
    use bolt_sim::{Cluster, IsolationConfig, ServerSpec};
    use bolt_workloads::{catalog, DatasetScale};

    let seed = flags.u64("seed")?.unwrap_or(0x2FA);
    let mut rng = StdRng::seed_from_u64(seed);
    let victims = vec![
        catalog::webserver::profile(&catalog::webserver::Variant::Dynamic, &mut rng).with_vcpus(8),
        catalog::hadoop::profile(
            &catalog::hadoop::Algorithm::Svm,
            DatasetScale::Large,
            &mut rng,
        )
        .with_vcpus(8),
        catalog::spark::profile(
            &catalog::spark::Algorithm::KMeans,
            DatasetScale::Large,
            &mut rng,
        )
        .with_vcpus(8),
    ];
    let enabled = flags.telemetry().is_some();
    let mut log = TelemetryLog::new();
    let mut table = Table::new(vec!["victim", "victim perf", "mcf", "target"]);
    for (idx, victim) in victims.into_iter().enumerate() {
        let name = victim.label().to_string();
        let mut cluster = Cluster::new(1, ServerSpec::xeon(), IsolationConfig::cloud_default())
            .map_err(|e| e.to_string())?;
        let mcf = catalog::speccpu::profile(&catalog::speccpu::Benchmark::Mcf, &mut rng);
        // One telemetry unit per Table 2 row.
        let mut telemetry = if enabled {
            Telemetry::for_unit(idx + 1)
        } else {
            Telemetry::disabled()
        };
        let outcome = run_rfa_telemetry(&mut cluster, 0, victim, mcf, &mut rng, &mut telemetry)
            .map_err(|e| e.to_string())?;
        log.merge(telemetry);
        table.row(vec![
            name,
            format!("{:+.0}%", outcome.victim_delta * 100.0),
            format!("{:+.0}%", outcome.beneficiary_delta * 100.0),
            outcome.target_resource.to_string(),
        ]);
    }
    println!("{}", table.render());
    write_telemetry(flags, &log)?;
    Ok(())
}

fn cmd_coresidency(flags: &Flags) -> Result<(), String> {
    use bolt::detector::{Detector, DetectorConfig};
    use bolt::experiment::shared_recommender;
    use bolt_recommender::RecommenderConfig;
    use bolt_sim::vm::VmRole;
    use bolt_sim::{Cluster, IsolationConfig, ServerSpec};
    use bolt_workloads::{catalog, DatasetScale};

    let servers = flags.usize("servers", 40)?;
    let seed = flags.u64("seed")?.unwrap_or(0xC0DE);
    let mut rng = StdRng::seed_from_u64(seed);
    let isolation = IsolationConfig::cloud_default();
    let mut cluster =
        Cluster::new(servers, ServerSpec::xeon(), isolation).map_err(|e| e.to_string())?;
    let victim_host = servers / 4 + 1;
    let victim = cluster
        .launch_on(
            victim_host,
            catalog::database::profile(&catalog::database::Variant::SqlOltp, &mut rng)
                .with_vcpus(8),
            VmRole::Friendly,
            0.0,
        )
        .map_err(|e| e.to_string())?;
    for s in (0..servers).step_by(5).take(7) {
        if s == victim_host {
            continue;
        }
        let p = catalog::database::profile(&catalog::database::Variant::SqlOltp, &mut rng)
            .with_vcpus(8);
        let _ = cluster.launch_on(s, p, VmRole::Friendly, 0.0);
    }
    for s in (2..servers).step_by(4).take(10) {
        if s == victim_host {
            // Leave headroom next to the victim: an instance-packed host
            // can never receive a probe (nor any other new tenant).
            continue;
        }
        let p = catalog::spark::profile(
            &catalog::spark::Algorithm::KMeans,
            DatasetScale::Medium,
            &mut rng,
        )
        .with_vcpus(8);
        let _ = cluster.launch_on(s, p, VmRole::Friendly, 0.0);
    }

    let rec = shared_recommender(
        7,
        &isolation,
        RecommenderConfig::default(),
        &flags.fit_cache()?,
        &mut Telemetry::disabled(),
    )
    .map_err(|e| e.to_string())?;
    let detector = Detector::new(rec, DetectorConfig::default());
    let config = CoResidencyConfig::default();
    println!(
        "hunting a SQL victim across {servers} servers; P(per fleet) = {:.2}",
        placement_probability(servers, 1, config.probes)
    );
    let enabled = flags.telemetry().is_some();
    let mut log = TelemetryLog::new();
    for round in 0..10 {
        // One telemetry unit per probe fleet.
        let mut telemetry = if enabled {
            Telemetry::for_unit(round + 1)
        } else {
            Telemetry::disabled()
        };
        let outcome = hunt_telemetry(
            &mut cluster,
            &detector,
            victim,
            "mysql",
            &config,
            round as f64 * 120.0,
            &mut rng,
            &mut telemetry,
        )
        .map_err(|e| e.to_string())?;
        log.merge(telemetry);
        println!(
            "fleet {round}: probed {:?}, SQL candidates {:?}",
            outcome.probed_servers, outcome.candidate_servers
        );
        if let Some(server) = outcome.confirmed_server {
            println!(
                "confirmed on server {server} (truth: {victim_host}) with a {:.1}x latency jump",
                outcome.latency_ratio()
            );
            write_telemetry(flags, &log)?;
            return Ok(());
        }
    }
    println!("not located within the fleet budget — relaunch with another --seed");
    write_telemetry(flags, &log)?;
    Ok(())
}

fn cmd_robustness(flags: &Flags) -> Result<(), String> {
    use bolt::robustness::churn_sweep_cache_telemetry;

    let config = ExperimentConfig {
        servers: flags.usize("servers", 8)?,
        victims: flags.usize("victims", 16)?,
        ..experiment_config(flags)?
    };
    let intensities = [0.0, 0.25, 0.5, 0.75, 1.0];
    eprintln!(
        "running the churn sweep: {} victims on {} servers at {} intensities...",
        config.victims,
        config.servers,
        intensities.len()
    );
    // The sweep always records internally — the counters feed the
    // fault/retry columns — so the log is there whether or not it is
    // written out.
    let (points, log) =
        churn_sweep_cache_telemetry(&config, &LeastLoaded, &intensities, &flags.fit_cache()?)
            .map_err(|e| e.to_string())?;
    let mut table = Table::new(vec![
        "intensity",
        "accuracy",
        "degraded",
        "silent",
        "confidence",
        "faults",
        "discarded",
        "retries",
    ]);
    for p in &points {
        table.row(vec![
            format!("{:.2}", p.intensity),
            pct(p.label_accuracy),
            pct(p.degraded_rate),
            pct(p.silent_mislabel_rate),
            format!("{:.3}", p.mean_confidence),
            p.faults_injected.to_string(),
            p.windows_discarded.to_string(),
            p.retries.to_string(),
        ]);
    }
    println!("{}", table.render());
    let calm = &points[0];
    let stormy = points.last().expect("nonempty sweep");
    // The frozen-cluster (intensity 0) silent rate is the detector's
    // baseline error; the contract is about what churn *adds* on top.
    let added_silent = (stormy.silent_mislabel_rate - calm.silent_mislabel_rate).max(0.0);
    println!(
        "full churn: +{} silent mislabels over the calm baseline vs {} degraded detections — {}",
        pct(added_silent),
        pct(stormy.degraded_rate),
        if added_silent <= stormy.degraded_rate + 1e-9 {
            "failures are announced"
        } else {
            "CONTRACT VIOLATED"
        }
    );
    write_telemetry(flags, &log)?;
    Ok(())
}

fn cmd_region(flags: &Flags) -> Result<(), String> {
    use bolt::region::{run_region_telemetry, RegionConfig};

    let mut config = RegionConfig {
        servers: flags.usize("servers", 1000)?,
        vms_per_server: flags.usize("vms-per-server", 10)?,
        steps: flags.usize("steps", 20)?,
        ..RegionConfig::default()
    };
    if let Some(seed) = flags.u64("seed")? {
        config.seed = seed;
    }
    eprintln!(
        "stepping a {}-server region ({} tenants/host target, {} steps)...",
        config.servers, config.vms_per_server, config.steps
    );
    let mut telemetry = Telemetry::for_unit(0);
    let report = run_region_telemetry(&config, &mut telemetry).map_err(|e| e.to_string())?;
    println!("{}", report.table().render());
    let mut log = TelemetryLog::new();
    log.merge(telemetry);
    write_telemetry(flags, &log)?;
    Ok(())
}

fn cmd_serve(flags: &Flags) -> Result<(), String> {
    use bolt::service::{run_service_cache_telemetry, ServiceConfig, ShedPolicy};
    use bolt::{Parallelism, RegionConfig};
    use bolt_sim::{ChaosConfig, StormConfig};

    let mut config = if flags.bool("region")? {
        // Region mode: wire the region experiment's shape into the
        // service — zero-noise region tenants, the shared sweep memo, and
        // co-arriving duplicate requests that exercise it.
        let region = RegionConfig {
            servers: flags.usize("servers", RegionConfig::default().servers)?,
            vms_per_server: flags.usize("vms-per-server", 10)?,
            ..RegionConfig::default()
        };
        let base = ServiceConfig::for_region(&region);
        ServiceConfig {
            requests: flags.usize("requests", base.requests)?,
            workers: flags.usize("workers", base.workers)?,
            queue_capacity: flags.usize("queue-cap", base.queue_capacity)?,
            warm_refit: flags.bool("warm-refit")?,
            ..base
        }
    } else {
        ServiceConfig {
            servers: flags.usize("servers", 8)?,
            vms_per_server: flags.usize("vms-per-server", 2)?,
            requests: flags.usize("requests", 200)?,
            workers: flags.usize("workers", 3)?,
            queue_capacity: flags.usize("queue-cap", 6)?,
            warm_refit: flags.bool("warm-refit")?,
            ..ServiceConfig::default()
        }
    };
    if let Some(rate) = flags.f64("rate")? {
        config.arrival_rate_per_min = rate;
    }
    if let Some(deadline) = flags.f64("deadline")? {
        config.deadline_s = deadline;
    }
    if let Some(seed) = flags.u64("seed")? {
        config.seed = seed;
    }
    if let Some(storm) = flags.f64("storm")? {
        config.storm = StormConfig::with_intensity(storm);
    }
    if let Some(chaos) = flags.f64("chaos-intensity")? {
        config.chaos = ChaosConfig::with_intensity(chaos);
    }
    if let Some(threads) = flags.u64("threads")? {
        config.parallelism = if threads <= 1 {
            Parallelism::Serial
        } else {
            Parallelism::Threads(threads as usize)
        };
    }
    if let Some(policy) = flags.0.get("shed") {
        config.shed = match policy.as_str() {
            "degrade" => ShedPolicy::DegradeToAnytime,
            "reject" => ShedPolicy::Reject,
            other => return Err(format!("--shed needs degrade or reject, got `{other}`")),
        };
    }

    eprintln!(
        "serving {} requests at {:.1}/min over {} lanes ({} servers, storm {:.2}, chaos {:.2})...",
        config.requests,
        config.arrival_rate_per_min,
        config.workers,
        config.servers,
        config.storm.intensity,
        config.chaos.intensity
    );
    let (report, log) =
        run_service_cache_telemetry(&config, &flags.fit_cache()?).map_err(|e| e.to_string())?;

    let mut table = Table::new(vec!["metric", "value"]);
    table.row(vec!["offered".into(), report.offered.to_string()]);
    table.row(vec![
        "storm-injected".into(),
        report.storm_injected.to_string(),
    ]);
    table.row(vec!["admitted".into(), report.admitted.to_string()]);
    table.row(vec!["completed".into(), report.completed.to_string()]);
    table.row(vec!["degraded".into(), report.degraded.to_string()]);
    table.row(vec![
        "shed (admission)".into(),
        report.shed_at_admission.to_string(),
    ]);
    table.row(vec![
        "shed (breaker)".into(),
        report.shed_after_admission.to_string(),
    ]);
    table.row(vec!["timed out".into(), report.timed_out.to_string()]);
    table.row(vec![
        "goodput/min".into(),
        format!("{:.2}", report.goodput_per_min),
    ]);
    if let Some(latency) = report.latency {
        table.row(vec![
            "latency p50/p99/max (s)".into(),
            format!(
                "{:.1} / {:.1} / {:.1}",
                latency.p50, latency.p99, latency.max
            ),
        ]);
    }
    table.row(vec!["degraded rate".into(), pct(report.degraded_rate)]);
    table.row(vec![
        "silent mislabels".into(),
        pct(report.silent_mislabel_rate),
    ]);
    table.row(vec![
        "events processed".into(),
        log.counter_total(bolt::Counter::EventsProcessed)
            .to_string(),
    ]);
    table.row(vec![
        "idle skipped (s)".into(),
        log.counter_total(bolt::Counter::IdleSkipped).to_string(),
    ]);
    table.row(vec![
        "sweeps shared".into(),
        log.counter_total(bolt::Counter::SweepsShared).to_string(),
    ]);
    println!("{}", table.render());
    println!(
        "conservation: admitted {} = completed {} + degraded {} + breaker-shed {} + timed-out {} — {}",
        report.admitted,
        report.completed,
        report.degraded,
        report.shed_after_admission,
        report.timed_out,
        if report.balanced() { "ok" } else { "VIOLATED" }
    );
    // The calm-cluster twin (same trace and load, no injected faults) is
    // the detector's intrinsic error floor; the service contract is that
    // everything faults *add* on top arrives announced — degraded, shed,
    // or timed out — never as extra silent mislabels.
    let calm_silent = if config.chaos.is_none() && config.storm.is_none() {
        report.silent_mislabel_rate
    } else {
        let calm = ServiceConfig {
            chaos: ChaosConfig::none(),
            storm: StormConfig::none(),
            ..config
        };
        run_service_cache_telemetry(&calm, &flags.fit_cache()?)
            .map_err(|e| e.to_string())?
            .0
            .silent_mislabel_rate
    };
    let added_silent = (report.silent_mislabel_rate - calm_silent).max(0.0);
    println!(
        "honesty: +{} silent mislabels over the calm baseline vs {} announced degradation — {}",
        pct(added_silent),
        pct(report.degraded_rate),
        if added_silent <= report.degraded_rate + 1e-9 {
            "failures are announced"
        } else {
            "CONTRACT VIOLATED"
        }
    );
    write_telemetry(flags, &log)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::parse_flags;
    use std::path::PathBuf;

    #[test]
    fn parse_flags_accepts_pairs() {
        let flags = parse_flags(
            [
                "--servers",
                "12",
                "--victims",
                "30",
                "--telemetry=out.jsonl",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .expect("valid flags");
        assert_eq!(flags.u64("servers").unwrap(), Some(12));
        assert_eq!(flags.usize("victims", 0).unwrap(), 30);
        assert_eq!(flags.telemetry(), Some(PathBuf::from("out.jsonl")));
    }

    #[test]
    fn parse_flags_rejects_bare_values_and_missing_values() {
        assert!(parse_flags(["12".to_string()].into_iter()).is_err());
        assert!(parse_flags(["--seed".to_string()].into_iter()).is_err());
        // Non-numeric values parse as flags but fail the typed accessor.
        let flags =
            parse_flags(["--seed".to_string(), "abc".to_string()].into_iter()).expect("parses");
        assert!(flags.u64("seed").is_err());
    }

    #[test]
    fn parse_flags_accepts_bare_booleans() {
        // Trailing, followed by another flag, and explicit forms all work;
        // absence reads false.
        for args in [
            vec!["--mrc"],
            vec!["--mrc", "--servers", "12"],
            vec!["--mrc=true"],
            vec!["--mrc", "true"],
        ] {
            let flags =
                parse_flags(args.iter().map(|s| s.to_string())).expect("valid boolean flag");
            assert!(flags.bool("mrc").unwrap(), "args: {args:?}");
        }
        let flags = parse_flags(["--servers".to_string(), "12".to_string()].into_iter()).unwrap();
        assert!(!flags.bool("mrc").unwrap());
        let flags = parse_flags(["--mrc=oui".to_string()].into_iter()).unwrap();
        assert!(flags.bool("mrc").is_err());
        let flags = parse_flags(
            ["--no-fit-cache", "--seed", "9"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert!(flags.bool("no-fit-cache").unwrap());
        let flags = parse_flags(
            ["--anytime", "--confidence-threshold", "0.8"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert!(flags.bool("anytime").unwrap());
        assert_eq!(flags.f64("confidence-threshold").unwrap(), Some(0.8));
    }
}
