#!/usr/bin/env bash
# Full pre-merge gate: build, tests, lints, and a compile check of every
# bench harness so experiment targets cannot silently rot.
set -euo pipefail
cd "$(dirname "$0")/.."

# First-party packages. Vendored crates under vendor/ are imported verbatim
# and deliberately left out of the formatting gate.
FIRST_PARTY=(-p bolt-repro -p bolt -p bolt-sim -p bolt-linalg -p bolt-workloads
             -p bolt-probes -p bolt-recommender -p bolt-bench)

echo "==> cargo fmt --check (first-party packages)"
cargo fmt --check "${FIRST_PARTY[@]}"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (tier-1: root package)"
cargo test -q

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo test --doc (doctests)"
cargo test --workspace --doc -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo bench --no-run (bench harnesses must compile)"
cargo bench --no-run --workspace

echo "==> chaos-off invariance (empty fault plans must be byte-invisible)"
cargo test -q -p bolt --test chaos_invariance

echo "==> robustness bench harness compiles"
cargo bench --no-run -p bolt-bench --bench robustness_churn

echo "==> MRC ablation bench harness compiles"
cargo bench --no-run -p bolt-bench --bench table1_mrc_ablation

echo "==> fit-cache bench harness compiles"
cargo bench --no-run -p bolt-bench --bench crit_fit_cache

echo "==> region-scale bench harnesses compile"
cargo bench --no-run -p bolt-bench --bench region_scale --bench crit_region_scale

echo "==> kernel bit-exactness (property tests: kernel(x) == reference(x) to the bit)"
cargo test -q -p bolt-linalg --test kernels_proptests

echo "==> kernel end-to-end invariance (force_reference moves no bytes)"
cargo test -q -p bolt --test kernel_invariance

echo "==> kernel bench harnesses compile"
cargo bench --no-run -p bolt-bench --bench crit_kernels --bench kernels_scale

echo "==> pgo-bolt.sh dry-run smoke (prerequisite check must not error)"
scripts/pgo-bolt.sh --dry-run > /dev/null

echo "==> anytime contracts (off is byte-invisible, on is deterministic & monotone)"
cargo test -q -p bolt --test anytime

echo "==> probes-vs-accuracy bench harness compiles"
cargo bench --no-run -p bolt-bench --bench probes_vs_accuracy

echo "==> mrc_extension example smoke run"
cargo run --release -q --example mrc_extension > /dev/null

echo "==> deterministic replay (same seed -> identical run, telemetry included)"
REPLAY_DIR=$(mktemp -d)
trap 'rm -rf "$REPLAY_DIR"' EXIT
for i in 1 2; do
  cargo run --release -q -- detect --servers 4 --victims 6 --seed 42 \
    --telemetry "$REPLAY_DIR/run$i.jsonl" > "$REPLAY_DIR/out$i.txt"
  # Wall-clock span durations are the one nondeterministic field.
  sed -E 's/"wall_ns":[0-9]+/"wall_ns":0/g' "$REPLAY_DIR/run$i.jsonl" \
    > "$REPLAY_DIR/norm$i.jsonl"
done
cmp "$REPLAY_DIR/out1.txt" "$REPLAY_DIR/out2.txt"
cmp "$REPLAY_DIR/norm1.jsonl" "$REPLAY_DIR/norm2.jsonl"

echo "==> fit cache is output-invariant (cache on vs --no-fit-cache)"
cargo run --release -q -- detect --servers 4 --victims 6 --seed 42 \
  --no-fit-cache > "$REPLAY_DIR/uncached.txt"
cmp "$REPLAY_DIR/out1.txt" "$REPLAY_DIR/uncached.txt"

echo "==> anytime smoke (--anytime runs deterministically, flag off unchanged)"
for i in 1 2; do
  cargo run --release -q -- detect --servers 4 --victims 6 --seed 42 --anytime \
    --confidence-threshold 0.7 > "$REPLAY_DIR/any$i.txt"
done
cmp "$REPLAY_DIR/any1.txt" "$REPLAY_DIR/any2.txt"

echo "==> service-loop smoke (storms on: Serial vs Threads(3) must move no bytes)"
cargo test -q -p bolt --test service_honesty
cargo bench --no-run -p bolt-bench --bench service_overload
SERVE_START=$SECONDS
cargo run --release -q -- serve --requests 200 --storm 0.6 --chaos-intensity 0.3 \
  --threads 1 --telemetry "$REPLAY_DIR/serve1.jsonl" > "$REPLAY_DIR/serve1.txt"
cargo run --release -q -- serve --requests 200 --storm 0.6 --chaos-intensity 0.3 \
  --threads 3 --telemetry "$REPLAY_DIR/serve3.jsonl" > "$REPLAY_DIR/serve3.txt"
SERVE_ELAPSED=$((SECONDS - SERVE_START))
cmp "$REPLAY_DIR/serve1.txt" "$REPLAY_DIR/serve3.txt"
for i in 1 3; do
  sed -E 's/"wall_ns":[0-9]+/"wall_ns":0/g' "$REPLAY_DIR/serve$i.jsonl" \
    > "$REPLAY_DIR/serve_norm$i.jsonl"
done
cmp "$REPLAY_DIR/serve_norm1.jsonl" "$REPLAY_DIR/serve_norm3.jsonl"
grep -q "failures are announced" "$REPLAY_DIR/serve1.txt" \
  || { echo "service smoke: honesty contract violated"; cat "$REPLAY_DIR/serve1.txt"; exit 1; }
# The 200-request loop itself is sub-second in release; a long-tail
# regression in the lane scheduler blows past this budget immediately.
if [ "$SERVE_ELAPSED" -gt 60 ]; then
  echo "service smoke: took ${SERVE_ELAPSED}s (budget 60s)"; exit 1
fi

echo "==> region-serve smoke (2k servers, storms on: Serial vs Threads(3) must move no bytes)"
cargo bench --no-run -p bolt-bench --bench service_region
RSERVE_START=$SECONDS
cargo run --release -q -- serve --region --servers 2000 --requests 60 --storm 0.5 \
  --threads 1 > "$REPLAY_DIR/rserve1.txt"
cargo run --release -q -- serve --region --servers 2000 --requests 60 --storm 0.5 \
  --threads 3 > "$REPLAY_DIR/rserve3.txt"
RSERVE_ELAPSED=$((SECONDS - RSERVE_START))
cmp "$REPLAY_DIR/rserve1.txt" "$REPLAY_DIR/rserve3.txt"
grep -q "| sweeps shared  *| 0  *|" "$REPLAY_DIR/rserve1.txt" \
  && { echo "region-serve smoke: no sweeps shared"; cat "$REPLAY_DIR/rserve1.txt"; exit 1; }
# The event-driven loop serves a 2k-server region in ~2s of wall time;
# anything near the budget means per-step or per-server cost crept back in.
if [ "$RSERVE_ELAPSED" -gt 60 ]; then
  echo "region-serve smoke: took ${RSERVE_ELAPSED}s (budget 60s)"; exit 1
fi

echo "==> idle invariance (10x sparser arrivals: same verdicts, same wall-time ballpark)"
IDLE_START=$SECONDS
cargo run --release -q -- serve --region --servers 500 --requests 60 --rate 2 \
  > "$REPLAY_DIR/idle_fast.txt"
cargo run --release -q -- serve --region --servers 500 --requests 60 --rate 0.2 \
  > "$REPLAY_DIR/idle_slow.txt"
IDLE_ELAPSED=$((SECONDS - IDLE_START))
# Verdict rows (offered/admitted/completed/degraded/shed/timed out) must be
# identical; latency and the idle-skipped counter legitimately differ.
for f in idle_fast idle_slow; do
  grep -E "offered|admitted|completed|degraded |shed|timed out" \
    "$REPLAY_DIR/$f.txt" > "$REPLAY_DIR/$f.verdicts"
done
cmp "$REPLAY_DIR/idle_fast.verdicts" "$REPLAY_DIR/idle_slow.verdicts"
# 10x idle time must not cost 10x wall time: both runs together fit the
# same small budget because the event clock jumps the gaps.
if [ "$IDLE_ELAPSED" -gt 60 ]; then
  echo "idle invariance: took ${IDLE_ELAPSED}s (budget 60s)"; exit 1
fi

echo "==> region smoke (5k servers / 50k VMs must step within the budget)"
REGION_START=$SECONDS
cargo run --release -q -- region --servers 5000 --vms-per-server 10 --steps 5 \
  > "$REPLAY_DIR/region.txt"
REGION_ELAPSED=$((SECONDS - REGION_START))
grep -q "^| vms  *| 50000" "$REPLAY_DIR/region.txt" \
  || { echo "region smoke: expected 50000 tenants"; cat "$REPLAY_DIR/region.txt"; exit 1; }
# Budget covers the whole invocation (including cargo dispatch); the run
# itself is ~0.2s — a linear-cost regression at this scale blows past 60s.
if [ "$REGION_ELAPSED" -gt 60 ]; then
  echo "region smoke: took ${REGION_ELAPSED}s (budget 60s)"; exit 1
fi

echo "OK: all checks passed"
