#!/usr/bin/env bash
# Full pre-merge gate: build, tests, lints, and a compile check of every
# bench harness so experiment targets cannot silently rot.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (tier-1: root package)"
cargo test -q

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo bench --no-run (bench harnesses must compile)"
cargo bench --no-run --workspace

echo "OK: all checks passed"
