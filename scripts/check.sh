#!/usr/bin/env bash
# Full pre-merge gate: build, tests, lints, and a compile check of every
# bench harness so experiment targets cannot silently rot.
set -euo pipefail
cd "$(dirname "$0")/.."

# First-party packages. Vendored crates under vendor/ are imported verbatim
# and deliberately left out of the formatting gate.
FIRST_PARTY=(-p bolt-repro -p bolt -p bolt-sim -p bolt-linalg -p bolt-workloads
             -p bolt-probes -p bolt-recommender -p bolt-bench)

echo "==> cargo fmt --check (first-party packages)"
cargo fmt --check "${FIRST_PARTY[@]}"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (tier-1: root package)"
cargo test -q

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo test --doc (doctests)"
cargo test --workspace --doc -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo bench --no-run (bench harnesses must compile)"
cargo bench --no-run --workspace

echo "OK: all checks passed"
