#!/usr/bin/env bash
# Opt-in PGO (+ optional llvm-bolt) pipeline for the release binary.
#
# Profile-guided optimization is the one compiler-side lever left after the
# kernel pass: the kernels fix the instruction mix, PGO fixes layout and
# branch weights around them. The pipeline is strictly opt-in because it
# needs an instrumented rebuild, a profiling run, and LLVM tooling whose
# version must match rustc's LLVM — none of which belongs in the default
# build or CI gate.
#
# Stages:
#   1. instrument: rebuild with -Cprofile-generate into its own target dir
#      (never pollutes the normal ./target artifacts)
#   2. profile: run the crit_run_experiment workload (the hot production
#      path: full detection experiments) to collect .profraw files
#   3. merge: llvm-profdata merge -> bolt.profdata
#   4. optimize: rebuild with -Cprofile-use and compare crit_run_experiment
#      numbers against the plain release build
#   5. (optional, --with-bolt) post-link llvm-bolt: relink with
#      --emit-relocs, instrument, re-profile, rewrite the binary
#
# Usage:
#   scripts/pgo-bolt.sh --dry-run      # prerequisite check only, no build
#   scripts/pgo-bolt.sh                # stages 1-4
#   scripts/pgo-bolt.sh --with-bolt    # stages 1-5 (needs llvm-bolt)
#
# Determinism note: PGO changes code layout, never floating-point
# semantics — the kernel bit-exactness gate (cargo test -p bolt --test
# kernel_invariance) holds for PGO builds too, and stage 4 reruns it.
set -euo pipefail
cd "$(dirname "$0")/.."

DRY_RUN=0
WITH_BOLT=0
for arg in "$@"; do
  case "$arg" in
    --dry-run) DRY_RUN=1 ;;
    --with-bolt) WITH_BOLT=1 ;;
    *) echo "unknown argument: $arg (expected --dry-run / --with-bolt)"; exit 2 ;;
  esac
done

HOST=$(rustc -vV | sed -n 's/^host: //p')
RUSTC_LLVM=$(rustc -vV | sed -n 's/^LLVM version: \([0-9]*\).*/\1/p')
PGO_DIR="target/pgo"
PROFRAW_DIR="$PGO_DIR/profraw"
PROFDATA="$PGO_DIR/bolt.profdata"

# rustup's llvm-tools component ships the matching llvm-profdata; fall back
# to the system binary (works only if its major version matches rustc's).
SYSROOT_BIN="$(rustc --print sysroot)/lib/rustlib/$HOST/bin"
if [ -x "$SYSROOT_BIN/llvm-profdata" ]; then
  PROFDATA_BIN="$SYSROOT_BIN/llvm-profdata"
else
  PROFDATA_BIN=$(command -v llvm-profdata || true)
fi

echo "==> prerequisites"
echo "    host:           $HOST"
echo "    rustc LLVM:     ${RUSTC_LLVM:-unknown}"
if [ -z "$PROFDATA_BIN" ]; then
  echo "    llvm-profdata:  NOT FOUND (install the rustup llvm-tools component)"
  PROFDATA_OK=0
else
  PROFDATA_LLVM=$("$PROFDATA_BIN" merge --version 2>/dev/null \
    | sed -n 's/.*LLVM version \([0-9]*\).*/\1/p' | head -1)
  echo "    llvm-profdata:  $PROFDATA_BIN (LLVM ${PROFDATA_LLVM:-unknown})"
  if [ -n "$PROFDATA_LLVM" ] && [ "$PROFDATA_LLVM" != "$RUSTC_LLVM" ]; then
    echo "    WARNING: llvm-profdata LLVM $PROFDATA_LLVM != rustc LLVM $RUSTC_LLVM;"
    echo "             .profraw files from rustc's newer runtime will likely be rejected."
    PROFDATA_OK=0
  else
    PROFDATA_OK=1
  fi
fi
BOLT_BIN=$(command -v llvm-bolt || true)
if [ -n "$BOLT_BIN" ]; then
  echo "    llvm-bolt:      $BOLT_BIN"
else
  echo "    llvm-bolt:      not found (stage 5 unavailable; PGO stages 1-4 unaffected)"
fi

if [ "$DRY_RUN" = 1 ]; then
  if [ "${PROFDATA_OK:-0}" = 1 ]; then
    echo "dry run: prerequisites look good; rerun without --dry-run to build."
  else
    echo "dry run: PGO prerequisites NOT satisfied (see above); the pipeline would fail at the merge stage."
  fi
  exit 0
fi

if [ "$WITH_BOLT" = 1 ] && [ -z "$BOLT_BIN" ]; then
  echo "error: --with-bolt requested but llvm-bolt is not on PATH"; exit 1
fi

echo "==> stage 1: instrumented build (-Cprofile-generate)"
rm -rf "$PROFRAW_DIR"
mkdir -p "$PROFRAW_DIR"
RUSTFLAGS="-Cprofile-generate=$PROFRAW_DIR" \
  cargo build --release --target-dir "$PGO_DIR/instrumented" -p bolt-bench --benches

echo "==> stage 2: profiling run (crit_run_experiment workload)"
CRIT_BIN=$(find "$PGO_DIR/instrumented/release/deps" -maxdepth 1 \
  -name 'crit_run_experiment-*' -type f -executable | head -1)
if [ -z "$CRIT_BIN" ]; then
  echo "error: instrumented crit_run_experiment binary not found"; exit 1
fi
"$CRIT_BIN" --bench 2>/dev/null | tail -2 || true
PROFRAW_COUNT=$(find "$PROFRAW_DIR" -name '*.profraw' | wc -l)
echo "    collected $PROFRAW_COUNT .profraw file(s)"
if [ "$PROFRAW_COUNT" = 0 ]; then
  echo "error: no profiles collected"; exit 1
fi

echo "==> stage 3: merge profiles"
if ! "$PROFDATA_BIN" merge -o "$PROFDATA" "$PROFRAW_DIR"/*.profraw; then
  echo "error: llvm-profdata merge failed (LLVM version mismatch between"
  echo "       $PROFDATA_BIN and rustc — install the rustup llvm-tools"
  echo "       component for a matching binary)."
  exit 1
fi

echo "==> stage 4: optimized build (-Cprofile-use) + comparison"
EMIT_RELOCS=""
if [ "$WITH_BOLT" = 1 ]; then
  EMIT_RELOCS=" -Clink-args=-Wl,--emit-relocs"
fi
RUSTFLAGS="-Cprofile-use=$(pwd)/$PROFDATA -Cllvm-args=-pgo-warn-missing-function$EMIT_RELOCS" \
  cargo build --release --target-dir "$PGO_DIR/optimized" -p bolt-bench --benches
RUSTFLAGS="-Cprofile-use=$(pwd)/$PROFDATA$EMIT_RELOCS" \
  cargo test -q --target-dir "$PGO_DIR/optimized" -p bolt --test kernel_invariance
PGO_CRIT=$(find "$PGO_DIR/optimized/release/deps" -maxdepth 1 \
  -name 'crit_run_experiment-*' -type f -executable | head -1)
echo "    baseline (plain release):"
cargo bench -p bolt-bench --bench crit_run_experiment 2>/dev/null \
  | grep -A1 "run_experiment_serial" | sed 's/^/    /'
echo "    PGO build:"
"$PGO_CRIT" --bench 2>/dev/null | grep -A1 "run_experiment_serial" | sed 's/^/    /'

if [ "$WITH_BOLT" = 1 ]; then
  echo "==> stage 5: llvm-bolt post-link optimization"
  BOLT_OUT="$PGO_DIR/crit_run_experiment.bolt"
  "$BOLT_BIN" "$PGO_CRIT" -o "$BOLT_OUT" -reorder-blocks=ext-tsp \
    -reorder-functions=cdsort -split-functions -split-all-cold -dyno-stats
  echo "    BOLT-optimized binary:"
  "$BOLT_OUT" --bench 2>/dev/null | grep -A1 "run_experiment_serial" | sed 's/^/    /'
fi

echo "OK: PGO pipeline complete (artifacts under $PGO_DIR/, normal target/ untouched)"
