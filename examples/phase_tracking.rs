//! Fig. 8: tracking a victim VM through consecutive jobs. The victim
//! instance runs SPEC's `mcf`, then a Hadoop SVM, then a Spark job, then
//! memcached, then Cassandra; Bolt re-detects every 20 seconds and follows
//! the phase changes.
//!
//! Run with: `cargo run --example phase_tracking`
//!
//! Pass `--telemetry <path>` to capture a JSONL trace of every probe
//! sweep, shutter capture, and matrix-completion pass the detector runs
//! while following the phases.

use bolt::detector::{Detector, DetectorConfig};
use bolt::experiment::observed_training;
use bolt::telemetry::{telemetry_path_from_args, Phase, Telemetry, TelemetryLog};
use bolt_recommender::{HybridRecommender, RecommenderConfig, TrainingData};
use bolt_sim::vm::VmRole;
use bolt_sim::{Cluster, IsolationConfig, ServerSpec};
use bolt_workloads::{catalog, training::training_set, DatasetScale, PressureVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let telemetry_path = telemetry_path_from_args(std::env::args().skip(1));
    let mut telemetry = if telemetry_path.is_some() {
        Telemetry::for_unit(0)
    } else {
        Telemetry::disabled()
    };
    let mut rng = StdRng::seed_from_u64(0xF18);
    let isolation = IsolationConfig::cloud_default();
    let mut cluster = Cluster::new(1, ServerSpec::xeon(), isolation)?;

    let adversary = cluster.launch_on(
        0,
        catalog::memcached::profile(&catalog::memcached::Variant::Mixed, &mut rng).with_vcpus(4),
        VmRole::Adversarial,
        0.0,
    )?;
    cluster.set_pressure_override(adversary, Some(PressureVector::zero()))?;

    // The victim's job schedule (the Fig. 8 sequence), each phase ~90 s.
    let jobs = [
        catalog::speccpu::profile(&catalog::speccpu::Benchmark::Mcf, &mut rng).with_vcpus(8),
        catalog::hadoop::profile(
            &catalog::hadoop::Algorithm::Svm,
            DatasetScale::Medium,
            &mut rng,
        )
        .with_vcpus(8),
        catalog::spark::profile(
            &catalog::spark::Algorithm::DataMining,
            DatasetScale::Medium,
            &mut rng,
        )
        .with_vcpus(8),
        catalog::memcached::profile(&catalog::memcached::Variant::ReadHeavyKb, &mut rng)
            .with_vcpus(8),
        catalog::cassandra::profile(&catalog::cassandra::Variant::Mixed, &mut rng).with_vcpus(8),
    ];
    let phase_s = 90.0;
    let victim = cluster.launch_on(0, jobs[0].clone(), VmRole::Friendly, 0.0)?;

    let data = TrainingData::from_examples(observed_training(&training_set(7), &isolation))?;
    let recommender = HybridRecommender::fit(data, RecommenderConfig::default())?;
    let detector = Detector::new(recommender, DetectorConfig::default());

    println!(
        "{:>7}  {:<28} {:<32}",
        "t (s)", "actually running", "Bolt's detection"
    );
    println!("{}", "-".repeat(72));
    let horizon = phase_s * jobs.len() as f64;
    let mut t = 0.0;
    while t < horizon {
        let phase = ((t / phase_s) as usize).min(jobs.len() - 1);
        cluster.swap_profile(victim, jobs[phase].clone())?;
        let clock = telemetry.begin();
        let d = detector.detect_telemetry(&cluster, adversary, t, &mut rng, &mut telemetry)?;
        telemetry.span(Phase::DetectionIteration, t, d.duration_s, clock);
        let detected = d
            .label()
            .map(ToString::to_string)
            .unwrap_or_else(|| "(no match)".to_string());
        let truth = jobs[phase].label().to_string();
        let hit = d
            .label()
            .map(|l| l.same_family(jobs[phase].label()))
            .unwrap_or(false);
        println!(
            "{t:>7.0}  {:<28} {:<32}{}",
            truth,
            detected,
            if hit { "" } else { "  <- stale/miss" }
        );
        t += 20.0;
    }
    if let Some(path) = telemetry_path {
        telemetry.cluster_events(cluster.take_events());
        let mut log = TelemetryLog::new();
        log.merge(telemetry);
        log.write_jsonl(&path)?;
        eprintln!("telemetry: {} events -> {}", log.len(), path.display());
    }
    Ok(())
}
