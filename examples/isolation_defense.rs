//! §6: how far today's isolation mechanisms go toward defeating
//! interference-based detection (Fig. 14), and what the secure
//! configuration costs.
//!
//! Run with: `cargo run --release --example isolation_defense`
//! (release strongly recommended — this runs 21 full detection
//! experiments).

use bolt::experiment::ExperimentConfig;
use bolt::isolation_study::run_isolation_study;
use bolt::report::{pct, Table};
use bolt_sim::OsSetting;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A reduced-scale sweep so the example finishes quickly; the bench
    // `fig14_isolation` runs the full 40-server version.
    let base = ExperimentConfig {
        servers: 10,
        victims: 20,
        ..ExperimentConfig::default()
    };
    eprintln!("running 21 detection experiments (3 settings x 7 stacks)...");
    let study = run_isolation_study(&base)?;

    let mut table = Table::new(vec!["isolation stack", "baremetal", "containers", "VMs"]);
    let stacks = [
        "none",
        "thread pinning",
        "+net bw partitioning",
        "+mem bw partitioning",
        "+cache partitioning",
        "+core isolation",
    ];
    for (i, stack) in stacks.iter().enumerate() {
        let row: Vec<String> = std::iter::once(stack.to_string())
            .chain(OsSetting::ALL.iter().map(|&s| {
                study
                    .accuracy(s, i)
                    .map(pct)
                    .unwrap_or_else(|| "-".to_string())
            }))
            .collect();
        table.row(row);
    }
    println!("{}", table.render());

    println!("core isolation alone (no other mechanisms):");
    for (setting, acc) in &study.core_isolation_only {
        println!("  {:<18} {}", setting.name(), pct(*acc));
    }
    let core_cell = study
        .cells
        .iter()
        .find(|c| c.stack == "+core isolation")
        .expect("core isolation cell exists");
    println!(
        "\nthe secure configuration costs {:.0}% execution time or {:.0}% utilization",
        (core_cell.performance_penalty - 1.0) * 100.0,
        core_cell.utilization_penalty * 100.0
    );
    println!("— and disk-heavy workloads remain detectable: no mechanism isolates disk.");
    Ok(())
}
