//! Quickstart: land an adversarial VM next to a victim and identify it.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Pass `--telemetry <path>` to capture the detection pipeline's JSONL
//! telemetry trace.

use bolt::detector::{Detector, DetectorConfig};
use bolt::experiment::observed_training;
use bolt::telemetry::{telemetry_path_from_args, Telemetry, TelemetryLog};
use bolt_recommender::{HybridRecommender, RecommenderConfig, TrainingData};
use bolt_sim::vm::VmRole;
use bolt_sim::{Cluster, IsolationConfig, ServerSpec};
use bolt_workloads::{catalog, training::training_set, PressureVector};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let telemetry_path = telemetry_path_from_args(std::env::args().skip(1));
    let mut telemetry = if telemetry_path.is_some() {
        Telemetry::for_unit(0)
    } else {
        Telemetry::disabled()
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);

    // One Xeon-class host in a default public-cloud configuration (VMs, no
    // extra isolation).
    let isolation = IsolationConfig::cloud_default();
    let mut cluster = Cluster::new(1, ServerSpec::xeon(), isolation)?;

    // The adversarial VM: 4 vCPUs, quiet until it probes.
    let adversary = cluster.launch_on(
        0,
        catalog::memcached::profile(&catalog::memcached::Variant::Mixed, &mut rng).with_vcpus(4),
        VmRole::Adversarial,
        0.0,
    )?;
    cluster.set_pressure_override(adversary, Some(PressureVector::zero()))?;

    // The victim: a production-sized memcached instance. The adversary
    // knows nothing about it.
    let victim = catalog::memcached::profile(&catalog::memcached::Variant::ReadHeavyKb, &mut rng)
        .with_vcpus(8);
    println!("victim (ground truth): {}", victim.label());
    println!("victim fingerprint:    {}", victim.base_pressure());
    cluster.launch_on(0, victim, VmRole::Friendly, 0.0)?;

    // Fit the hybrid recommender on the 120-application training set,
    // observed through the same isolation channel.
    let data = TrainingData::from_examples(observed_training(&training_set(7), &isolation))?;
    let recommender = HybridRecommender::fit(data, RecommenderConfig::default())?;
    let detector = Detector::new(recommender, DetectorConfig::default());

    // One detection iteration: probing + data mining. Bolt emits one
    // verdict per co-resident it believes it disentangled.
    let detection =
        detector.detect_telemetry(&cluster, adversary, 20.0, &mut rng, &mut telemetry)?;
    println!(
        "\nprofiling cost: {:.1} simulated seconds",
        detection.duration_s
    );
    let primary = detection.primary().expect("a co-resident was detected");
    println!("similarity distribution of the primary verdict (top 5):");
    for score in primary.scores.iter().take(5) {
        println!(
            "  {:<35} correlation {:+.3}  share {:>5.1}%",
            score.label.to_string(),
            score.correlation,
            score.share * 100.0
        );
    }
    println!("\nBolt's verdicts (one per believed co-resident):");
    for (i, verdict) in detection.verdicts.iter().enumerate() {
        match verdict.label() {
            Some(label) => println!("  #{i}: looks like {label}"),
            None => println!("  #{i}: never seen anything like this"),
        }
    }
    println!(
        "primary resource characteristics: {}",
        primary.characteristics
    );
    if let Some(path) = telemetry_path {
        let mut log = TelemetryLog::new();
        log.merge(telemetry);
        log.write_jsonl(&path)?;
        eprintln!("telemetry: {} events -> {}", log.len(), path.display());
    }
    Ok(())
}
