//! The §5.2 resource-freeing attack: a helper saturates the victim's
//! dominant resource, the victim stalls, and the beneficiary (`mcf`)
//! reclaims what the victim released (Table 2).
//!
//! Run with: `cargo run --example rfa_attack`

use bolt::attacks::rfa::run_rfa;
use bolt_sim::{Cluster, IsolationConfig, ServerSpec};
use bolt_workloads::{catalog, DatasetScale};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(0x2FA);

    println!(
        "{:<22} {:>14} {:>16} {:>14}",
        "victim", "victim perf", "beneficiary", "target"
    );
    println!("{}", "-".repeat(70));

    // The three Table 2 victims, each hunted on a fresh host.
    let victims = vec![
        catalog::webserver::profile(&catalog::webserver::Variant::Dynamic, &mut rng).with_vcpus(8),
        catalog::hadoop::profile(
            &catalog::hadoop::Algorithm::Svm,
            DatasetScale::Large,
            &mut rng,
        )
        .with_vcpus(8),
        catalog::spark::profile(
            &catalog::spark::Algorithm::KMeans,
            DatasetScale::Large,
            &mut rng,
        )
        .with_vcpus(8),
    ];

    for victim in victims {
        let mut cluster = Cluster::new(1, ServerSpec::xeon(), IsolationConfig::cloud_default())?;
        let beneficiary = catalog::speccpu::profile(&catalog::speccpu::Benchmark::Mcf, &mut rng);
        let name = victim.label().to_string();
        let outcome = run_rfa(&mut cluster, 0, victim, beneficiary, &mut rng)?;
        println!(
            "{:<22} {:>+13.0}% {:>+15.0}% {:>14}",
            name,
            outcome.victim_delta * 100.0,
            outcome.beneficiary_delta * 100.0,
            outcome.target_resource.to_string()
        );
    }

    println!("\nNegative victim numbers are lost QPS (webserver) or added execution");
    println!("time (analytics); positive beneficiary numbers are mcf's speedup from");
    println!("the resources the stalled victim released.");
    Ok(())
}
