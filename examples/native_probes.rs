//! The native stress kernels: real, self-timing microbenchmarks runnable
//! on this machine. Demonstrates the cache-level latency cliff that the
//! ramp protocol's degradation detection rests on.
//!
//! Run with: `cargo run --release --example native_probes`

use bolt_probes::native::{
    alu_burn, cache_chase, disk_stream, intensity_to_working_set, memory_stream,
};

fn main() {
    println!("pointer-chase latency across working-set sizes (defeats prefetching):");
    println!(
        "{:>12} {:>16} {:>12}",
        "working set", "accesses/sec", "ns/access"
    );
    for (name, bytes) in [
        ("16 KiB", 16 * 1024),        // L1d resident
        ("128 KiB", 128 * 1024),      // L2 resident
        ("2 MiB", 2 * 1024 * 1024),   // LLC resident
        ("64 MiB", 64 * 1024 * 1024), // memory latency
    ] {
        let run = cache_chase(bytes, 3_000_000);
        println!(
            "{name:>12} {:>16.0} {:>12.2}",
            run.ops_per_sec(),
            1e9 / run.ops_per_sec()
        );
    }

    println!("\nstreaming memory bandwidth:");
    let run = memory_stream(64 * 1024 * 1024, 4);
    println!("  {:.2} GB/s", run.ops_per_sec() / 1e9);

    println!("\ndependent ALU chain throughput:");
    let run = alu_burn(200_000_000);
    println!("  {:.0} Mops/s", run.ops_per_sec() / 1e6);

    println!("\ndisk write+read-back throughput (32 MiB scratch file):");
    match disk_stream(32 * 1024 * 1024) {
        Ok(run) => println!("  {:.2} MB/s", run.ops_per_sec() / 1e6),
        Err(e) => println!("  unavailable: {e}"),
    }

    println!("\nintensity mapping for a tunable LLC probe (8 MiB cache):");
    for intensity in [10.0, 50.0, 100.0] {
        let ws = intensity_to_working_set(8 * 1024 * 1024, intensity);
        println!(
            "  intensity {intensity:>4}% -> working set {:>8} KiB",
            ws / 1024
        );
    }
}
