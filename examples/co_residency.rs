//! The §5.3 co-residency detection attack: locate a specific victim (a
//! SQL server) in a shared cluster with simultaneous probe launches, type
//! detection, and sender/receiver confirmation.
//!
//! Run with: `cargo run --example co_residency`

use bolt::attacks::coresidency::{hunt, placement_probability, CoResidencyConfig};
use bolt::detector::{Detector, DetectorConfig};
use bolt::experiment::observed_training;
use bolt_recommender::{HybridRecommender, RecommenderConfig, TrainingData};
use bolt_sim::vm::VmRole;
use bolt_sim::{Cluster, IsolationConfig, ServerSpec};
use bolt_workloads::{catalog, training::training_set, DatasetScale};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    let isolation = IsolationConfig::cloud_default();

    // A 40-server cluster (the paper's testbed). The target victim: one
    // SQL server. Seven other SQL servers and assorted tenants are decoys.
    let mut cluster = Cluster::new(40, ServerSpec::xeon(), isolation)?;
    let victim_profile =
        catalog::database::profile(&catalog::database::Variant::SqlOltp, &mut rng).with_vcpus(8);
    println!("target: {} on a hidden host", victim_profile.label());
    let victim = cluster.launch_on(11, victim_profile, VmRole::Friendly, 0.0)?;
    for s in [3, 7, 19, 23, 28, 31, 36] {
        let p = catalog::database::profile(&catalog::database::Variant::SqlOltp, &mut rng)
            .with_vcpus(8);
        cluster.launch_on(s, p, VmRole::Friendly, 0.0)?;
    }
    for s in [1, 5, 9, 13, 17, 21, 25, 29, 33, 37] {
        let p = catalog::spark::profile(
            &catalog::spark::Algorithm::KMeans,
            DatasetScale::Medium,
            &mut rng,
        )
        .with_vcpus(8);
        cluster.launch_on(s, p, VmRole::Friendly, 0.0)?;
    }

    let data = TrainingData::from_examples(observed_training(&training_set(7), &isolation))?;
    let recommender = HybridRecommender::fit(data, RecommenderConfig::default())?;
    let detector = Detector::new(recommender, DetectorConfig::default());

    let config = CoResidencyConfig::default();
    println!(
        "launching {} probes over {} servers: P(co-residency) = {:.2}",
        config.probes,
        cluster.server_count(),
        placement_probability(cluster.server_count(), 1, config.probes)
    );

    // Launch probe fleets until one lands next to the target — the
    // expected number of rounds is 1 / P(co-residency).
    let mut total_vms = 0;
    let mut total_time = 0.0;
    for round in 1..=8 {
        let outcome = hunt(
            &mut cluster,
            &detector,
            victim,
            "mysql",
            &config,
            round as f64 * 120.0,
            &mut rng,
        )?;
        total_vms += outcome.vms_used;
        total_time += outcome.elapsed_s;
        println!(
            "\nround {round}: probed servers {:?}\n         SQL-typed co-residents on {:?}",
            outcome.probed_servers, outcome.candidate_servers
        );
        match outcome.confirmed_server {
            Some(s) => {
                println!(
                    "receiver latency: {:.2} ms baseline -> {:.2} ms under sender contention",
                    outcome.baseline_latency_ms,
                    outcome.contended_latency_ms.unwrap_or(f64::NAN)
                );
                println!(
                    "confirmed: the target lives on server {s} ({:.1}x latency jump), \
                     {total_vms} adversarial VMs, {total_time:.0} simulated seconds total",
                    outcome.latency_ratio()
                );
                return Ok(());
            }
            None => println!("no probe landed next to the target — relaunching the fleet"),
        }
    }
    println!("target not located within the fleet budget");
    Ok(())
}
