//! The §5.1 internal DoS attack: detect a victim, craft targeted
//! contention, and compare against a naive CPU-saturating DoS under a
//! live-migration defense (Fig. 13).
//!
//! Run with: `cargo run --example dos_attack`
//!
//! Pass `--telemetry <path>` to capture a JSONL trace: the detection
//! pipeline plus both attack executions (unit 1 = Bolt, unit 2 = naive).

use bolt::attacks::dos::{craft_attack, naive_attack, run_dos_telemetry, DosRunConfig};
use bolt::detector::{Detector, DetectorConfig};
use bolt::experiment::observed_training;
use bolt::telemetry::{telemetry_path_from_args, Telemetry, TelemetryLog};
use bolt_recommender::{HybridRecommender, RecommenderConfig, TrainingData};
use bolt_sim::vm::VmRole;
use bolt_sim::{Cluster, IsolationConfig, ServerSpec, VmId};
use bolt_workloads::{catalog, training::training_set, LoadPattern, PressureVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scene(rng: &mut StdRng) -> Result<(Cluster, VmId, VmId, f64), Box<dyn std::error::Error>> {
    let mut cluster = Cluster::new(4, ServerSpec::xeon(), IsolationConfig::cloud_default())?;
    let victim_profile =
        catalog::memcached::profile(&catalog::memcached::Variant::ReadHeavyKb, rng)
            .with_vcpus(12)
            .with_load(LoadPattern::Constant { level: 0.7 });
    let baseline_ms = victim_profile.base_latency_ms();
    let victim = cluster.launch_on(0, victim_profile, VmRole::Friendly, 0.0)?;
    let attacker = cluster.launch_on(
        0,
        catalog::memcached::profile(&catalog::memcached::Variant::Mixed, rng).with_vcpus(4),
        VmRole::Adversarial,
        0.0,
    )?;
    cluster.set_pressure_override(attacker, Some(PressureVector::zero()))?;
    Ok((cluster, attacker, victim, baseline_ms))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let telemetry_path = telemetry_path_from_args(std::env::args().skip(1));
    let unit = |u: usize| {
        if telemetry_path.is_some() {
            Telemetry::for_unit(u)
        } else {
            Telemetry::disabled()
        }
    };
    let mut rng = StdRng::seed_from_u64(7);
    let isolation = IsolationConfig::cloud_default();
    let data = TrainingData::from_examples(observed_training(&training_set(7), &isolation))?;
    let recommender = HybridRecommender::fit(data, RecommenderConfig::default())?;
    let detector = Detector::new(recommender, DetectorConfig::default());
    let defense = DosRunConfig::default();

    // --- Bolt's attack: detect first, then stress what the victim needs.
    let (mut cluster, attacker, victim, baseline) = scene(&mut rng)?;
    let mut bolt_telemetry = unit(1);
    let detection =
        detector.detect_telemetry(&cluster, attacker, 10.0, &mut rng, &mut bolt_telemetry)?;
    println!(
        "detected co-resident: {:?} ({:?})",
        detection.label().map(ToString::to_string),
        detection.characteristics().map(ToString::to_string),
    );
    let primary = detection.primary().expect("a co-resident was detected");
    let attack = craft_attack(primary);
    println!("crafted contention:   {attack}");
    let bolt = run_dos_telemetry(
        &mut cluster,
        attacker,
        victim,
        attack,
        &defense,
        &mut rng,
        &mut bolt_telemetry,
    )?;

    // --- The naive baseline: saturate compute, get migrated away.
    let (mut cluster2, attacker2, victim2, _) = scene(&mut rng)?;
    let mut naive_telemetry = unit(2);
    let naive = run_dos_telemetry(
        &mut cluster2,
        attacker2,
        victim2,
        naive_attack(),
        &defense,
        &mut rng,
        &mut naive_telemetry,
    )?;

    println!("\n{:^8}|{:^26}|{:^26}", "t (s)", "Bolt attack", "naive DoS");
    println!(
        "{:^8}|{:^12}{:^14}|{:^12}{:^14}",
        "", "p99 (ms)", "host util %", "p99 (ms)", "host util %"
    );
    for i in (0..bolt.samples.len()).step_by(10) {
        let b = &bolt.samples[i];
        let n = &naive.samples[i];
        println!(
            "{:^8}|{:^12.2}{:^14.1}|{:^12.2}{:^14.1}{}",
            b.time_s,
            b.p99_latency_ms,
            b.cpu_utilization,
            n.p99_latency_ms,
            n.cpu_utilization,
            if n.migrating { "  <- migrating" } else { "" }
        );
    }
    println!(
        "\nBolt:  peak amplification {:.0}x, steady-state {:.0}x, migration triggered: {}",
        bolt.peak_amplification(baseline),
        bolt.final_amplification(baseline),
        bolt.migration_at.is_some()
    );
    println!(
        "naive: peak amplification {:.0}x, steady-state {:.0}x, migration at t={:?}s",
        naive.peak_amplification(baseline),
        naive.final_amplification(baseline),
        naive.migration_at
    );
    println!("\nThe naive attack trips the 70% utilization monitor and loses its victim;");
    println!("Bolt stays quiet on CPU and keeps degrading the victim indefinitely.");
    if let Some(path) = telemetry_path {
        let mut log = TelemetryLog::new();
        log.merge(bolt_telemetry);
        log.merge(naive_telemetry);
        log.write_jsonl(&path)?;
        eprintln!("telemetry: {} events -> {}", log.len(), path.display());
    }
    Ok(())
}
