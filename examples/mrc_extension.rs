//! The paper's §3.3 future-work extension: cache miss-rate curves (MRCs)
//! as an additional detection signal. Two applications with identical
//! *average* LLC pressure are indistinguishable to the ten-dimensional
//! pressure fingerprint — but their MRCs, which encode cache *reuse*
//! rather than occupancy, separate them cleanly.
//!
//! Run with: `cargo run --release --example mrc_extension`

use bolt_probes::native::measure_latency_curve;
use bolt_workloads::catalog::speccpu;
use bolt_workloads::mrc::{derive_mrc, mrc_separates};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(0x3C);

    // Two SPEC jobs with similar LLC pressure but opposite reuse patterns:
    // mcf pointer-chases a cache-resident structure, lbm streams through
    // memory with almost no reuse.
    let mcf = speccpu::profile(&speccpu::Benchmark::Mcf, &mut rng);
    let lbm = speccpu::profile(&speccpu::Benchmark::Lbm, &mut rng);
    // The reference (full-load) pressure is what `derive_mrc` fits
    // against, so print the same quantity — `base_pressure` drifts with
    // the sampled input-load level and would disagree with the curves.
    println!(
        "average LLC pressure: mcf {:.0}%, lbm {:.0}% (close — hard to tell apart)",
        mcf.reference_pressure()[bolt_workloads::Resource::Llc],
        lbm.reference_pressure()[bolt_workloads::Resource::Llc],
    );

    let mcf_mrc = derive_mrc(&mcf);
    let lbm_mrc = derive_mrc(&lbm);
    println!("\nmiss rate vs LLC allocation:");
    println!("{:>12} {:>8} {:>8}", "allocation", "mcf", "lbm");
    for i in 1..=8 {
        let a = i as f64 / 8.0;
        println!(
            "{:>11.0}% {:>8.2} {:>8.2}",
            a * 100.0,
            mcf_mrc.miss_rate(a),
            lbm_mrc.miss_rate(a)
        );
    }
    println!(
        "\nMRC distance: {:.2} — the curves separate what pressure alone cannot: {}",
        mcf_mrc.distance(&lbm_mrc, 8),
        if mrc_separates(&mcf, &lbm, 25.0, 0.05) {
            "yes"
        } else {
            "no"
        }
    );

    // And the physical basis on this machine: the pointer-chase latency
    // curve whose shifts an adversary would read the victim's MRC from.
    println!("\nthis machine's own latency curve (the probe's raw signal):");
    println!("{:>12} {:>12}", "working set", "ns/access");
    for (bytes, ns) in measure_latency_curve(16 * 1024 * 1024, 8) {
        println!("{:>9} KiB {:>12.2}", bytes / 1024, ns);
    }
}
